// Package obs is the node-level observability layer: a dependency-free
// metrics registry (counters, gauges, histograms backed by
// internal/stats.Histogram), a hand-rolled Prometheus text-exposition
// writer, and an op-event tracing hook threaded through contexts
// alongside network.WithMeter.
//
// Design constraints, in order:
//
//   - Determinism. Metrics must never perturb a simulation replay:
//     nothing here reads wall clocks or random streams, and Snapshot
//     orders families and series by name so two replays of the same
//     seed serialize to byte-identical JSON.
//   - Cheap hot path. Counters and gauges are single atomics;
//     histograms take one short mutex (inside stats.Histogram). A
//     scrape copies state under those same locks and formats outside
//     them, so a Prometheus poll never stalls an op.
//   - No dependencies. Only the standard library and internal/stats;
//     the exposition writer is hand-rolled (prom.go).
//
// All constructors are usable on a nil *Registry: they return live
// metric objects that simply are not exported anywhere, so packages
// instrument unconditionally and wiring decides who gets scraped.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Kind labels a metric family for the exposition writer and snapshots.
type Kind string

// The three family kinds of the exposition format. Func-backed families
// (CounterFunc, GaugeFunc) render as their underlying kind.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds metric families and renders them as Prometheus text or
// as a deterministic Snapshot. One registry serves one scrape domain: a
// real node has its own, a simulated deployment shares one across all
// peers so cluster-wide families aggregate automatically (every peer's
// Counter call resolves to the same series).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with all its label permutations.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string // label names; empty for plain metrics

	mu     sync.Mutex
	series map[string]*series // key: label values joined by \xff
	funcs  []func() float64   // func-backed families: summed at scrape
	dur    bool               // histogram samples are nanoseconds; expose seconds
}

// series is one label permutation's live state.
type series struct {
	labelVals []string
	counter   atomic.Uint64
	gauge     atomic.Int64
	hist      *stats.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey joins label values into a map key. \xff cannot appear in the
// label values we generate (metric labels here are enum-ish strings).
func labelKey(vals []string) string { return strings.Join(vals, "\xff") }

// lookup returns the named family, creating it on first use. Lookups
// are idempotent — every peer of a simulated deployment "creates" the
// same families — but a name must keep one kind and label arity for the
// life of the registry; a mismatch panics, since it is a programming
// error that would corrupt the exposition.
func (r *Registry) lookup(name, help string, kind Kind, dur bool, labels []string) *family {
	if r == nil {
		// Unregistered live family: callers get working metrics that no
		// scrape will ever see, so instrumentation needs no nil checks.
		return &family{name: name, help: help, kind: kind, dur: dur,
			labels: labels, series: map[string]*series{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, dur: dur,
			labels: labels, series: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic("obs: metric " + name + " re-registered with a different kind or label set")
	}
	return f
}

// with returns the series for one label permutation, creating it (and
// its histogram, for histogram families) on first use.
func (f *family) with(vals []string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := labelKey(vals)
	s, ok := f.series[k]
	if !ok {
		s = &series{labelVals: append([]string(nil), vals...)}
		if f.kind == KindHistogram {
			s.hist = &stats.Histogram{}
		}
		f.series[k] = s
	}
	return s
}

// Counter is a monotonically increasing count. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.counter.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.s.counter.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.s.counter.Load() }

// Gauge is an instantaneous level (e.g. in-flight calls).
type Gauge struct{ s *series }

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.s.gauge.Store(v) }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.s.gauge.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.s.gauge.Load() }

// Histogram is a distribution of samples. Duration histograms (made by
// DurationHistogram*) record nanoseconds and expose seconds; value
// histograms record raw units (hops, ages in rounds, ...).
type Histogram struct{ s *series }

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) { h.s.hist.Record(d) }

// ObserveValue records one raw sample.
func (h *Histogram) ObserveValue(v int64) { h.s.hist.RecordValue(v) }

// Count returns the number of samples recorded so far.
func (h *Histogram) Count() uint64 { return h.s.hist.Count() }

// CounterVec is a counter family with labels; With resolves one series.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with labels; With resolves one series.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with labels; With resolves one series.
type HistogramVec struct{ f *family }

// With returns the counter for the given label values (one per declared
// label name, in order), creating the series at zero on first use.
func (v *CounterVec) With(vals ...string) *Counter { return &Counter{s: v.f.with(vals)} }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge { return &Gauge{s: v.f.with(vals)} }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram { return &Histogram{s: v.f.with(vals)} }

// Counter returns the plain (label-less) counter family name, creating
// it on first use. Safe on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{s: r.lookup(name, help, KindCounter, false, nil).with(nil)}
}

// Gauge returns the plain gauge family name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{s: r.lookup(name, help, KindGauge, false, nil).with(nil)}
}

// CounterVec declares a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, KindCounter, false, labels)}
}

// GaugeVec declares a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, KindGauge, false, labels)}
}

// DurationHistogram returns a plain histogram that records durations
// (stored as nanoseconds, exposed in seconds).
func (r *Registry) DurationHistogram(name, help string) *Histogram {
	return &Histogram{s: r.lookup(name, help, KindHistogram, true, nil).with(nil)}
}

// DurationHistogramVec declares a labeled duration histogram family.
func (r *Registry) DurationHistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, KindHistogram, true, labels)}
}

// ValueHistogram returns a plain histogram of raw (unit-less) samples,
// e.g. lookup hop counts.
func (r *Registry) ValueHistogram(name, help string) *Histogram {
	return &Histogram{s: r.lookup(name, help, KindHistogram, false, nil).with(nil)}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for packages that already keep cumulative stats
// (repair.Stats, WAL append counts) without importing obs. Multiple
// registrations under one name sum, which is how a simulated deployment
// aggregates per-peer stats into one cluster series. Safe on a nil
// registry (the func is simply never called).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, KindCounter, false, nil)
	f.mu.Lock()
	f.funcs = append(f.funcs, fn)
	f.mu.Unlock()
}

// GaugeFunc registers a gauge read from fn at scrape time; multiple
// registrations under one name sum, like CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, KindGauge, false, nil)
	f.mu.Lock()
	f.funcs = append(f.funcs, fn)
	f.mu.Unlock()
}

// Snapshot captures every family deterministically: families sorted by
// name, series sorted by label values, func collectors summed in
// registration order. Two identical replays produce identical snapshots
// (and identical JSON), which the determinism tests assert.
func (r *Registry) Snapshot() *Snapshot {
	out := &Snapshot{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		out.Families = append(out.Families, f.snapshot())
	}
	return out
}

// snapshot captures one family under its lock.
func (f *family) snapshot() FamilySnap {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := FamilySnap{Name: f.name, Help: f.help, Kind: f.kind}
	for _, k := range keys {
		s := f.series[k]
		ss := SeriesSnap{}
		if len(f.labels) > 0 {
			ss.Labels = map[string]string{}
			for i, name := range f.labels {
				ss.Labels[name] = s.labelVals[i]
			}
		}
		switch f.kind {
		case KindCounter:
			ss.Value = float64(s.counter.Load())
		case KindGauge:
			ss.Value = float64(s.gauge.Load())
		case KindHistogram:
			ss.Hist = histSnap(s.hist, f.dur)
		}
		snap.Series = append(snap.Series, ss)
	}
	funcs := append([]func() float64(nil), f.funcs...)
	f.mu.Unlock()
	if len(funcs) > 0 {
		// Func collectors read live state outside the family lock (the
		// callee has its own); summing in registration order keeps the
		// result deterministic across replays.
		var sum float64
		for _, fn := range funcs {
			sum += fn()
		}
		if len(snap.Series) == 0 {
			snap.Series = append(snap.Series, SeriesSnap{Value: sum})
		} else {
			snap.Series[0].Value += sum
		}
	}
	return snap
}

// histSnap summarizes one histogram for snapshots: scale converts the
// recorded unit into the exposed one (1e-9 for duration histograms).
func histSnap(h *stats.Histogram, dur bool) *HistSnap {
	snap := h.Snapshot()
	scale := 1.0
	if dur {
		scale = 1e-9
	}
	hs := &HistSnap{
		Count: snap.Count(),
		Sum:   float64(snap.Sum()) * scale,
	}
	if hs.Count > 0 {
		hs.Min = float64(snap.Min()) * scale
		hs.Max = float64(snap.Max()) * scale
		hs.P50 = float64(snap.Quantile(0.50)) * scale
		hs.P95 = float64(snap.Quantile(0.95)) * scale
		hs.P99 = float64(snap.Quantile(0.99)) * scale
	}
	ladder := valueLadder
	if dur {
		ladder = durationLadder
	}
	buckets := snap.Buckets()
	var cum uint64
	bi := 0
	for _, le := range ladder {
		raw := le / scale
		for bi < len(buckets) && float64(buckets[bi].Upper-1) <= raw {
			cum += buckets[bi].Count
			bi++
		}
		hs.Buckets = append(hs.Buckets, BucketSnap{LE: le, Count: cum})
	}
	return hs
}

// Snapshot is a point-in-time, deterministic copy of a registry,
// JSON-serializable for exp.Result and /debug/status consumers.
type Snapshot struct {
	Families []FamilySnap `json:"families"`
}

// FamilySnap is one metric family in a Snapshot.
type FamilySnap struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Kind   Kind         `json:"kind"`
	Series []SeriesSnap `json:"series,omitempty"`
}

// SeriesSnap is one label permutation's captured value.
type SeriesSnap struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Hist   *HistSnap         `json:"hist,omitempty"`
}

// HistSnap summarizes a histogram series: exact count/sum/extremes,
// bucketed quantiles (~3% relative error), and the cumulative
// Prometheus bucket ladder.
type HistSnap struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min,omitempty"`
	Max     float64      `json:"max,omitempty"`
	P50     float64      `json:"p50,omitempty"`
	P95     float64      `json:"p95,omitempty"`
	P99     float64      `json:"p99,omitempty"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// BucketSnap is one cumulative exposition bucket: Count samples were <= LE.
type BucketSnap struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Get returns the named family snapshot, or nil — convenience for tests
// and figure code digging one family out of a Snapshot.
func (s *Snapshot) Get(name string) *FamilySnap {
	if s == nil {
		return nil
	}
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Total sums a family's series values — handy for counters split across
// label permutations (e.g. verdicts by level).
func (f *FamilySnap) Total() float64 {
	if f == nil {
		return 0
	}
	var sum float64
	for _, s := range f.Series {
		sum += s.Value
	}
	return sum
}
