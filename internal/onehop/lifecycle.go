package onehop

import (
	"time"

	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

// Join attaches this node to the overlay reachable through bootstrap:
// pull the bootstrap's table, ask the successor-to-be to cede our arc
// (replicas and service counters), then broadcast our arrival to every
// member we now know — the D1HT join event. After the broadcast drains,
// every steady member resolves our arc to us in one hop.
func (n *Node) Join(bootstrap network.Addr) error {
	ctx := context.Background()
	raw, err := n.call(ctx, bootstrap, methodTable, TableReq{})
	if err != nil {
		return fmt.Errorf("onehop: join via %s: %w", bootstrap, err)
	}
	n.mu.Lock()
	for _, ref := range raw.(TableResp).Table {
		n.insertLocked(ref)
	}
	skip := map[core.ID]bool{n.self.ID: true}
	succ, ok := n.successorOfLocked(n.self.ID, skip)
	n.mu.Unlock()
	if !ok {
		// Bootstrap knew nobody else; we and it are the ring now.
		n.broadcast(EventReq{From: n.self, Joins: []dht.NodeRef{n.self}})
		return nil
	}
	if succ.ID == n.self.ID {
		return fmt.Errorf("onehop: id collision on join: %w", core.ErrUnreachable)
	}
	raw, err = n.call(ctx, succ.Addr, methodJoin, JoinReq{NewNode: n.self})
	if err != nil {
		return fmt.Errorf("onehop: join transfer from %s: %w", succ.Addr, err)
	}
	tr := raw.(JoinResp)
	n.mu.Lock()
	for _, ref := range tr.Table {
		n.insertLocked(ref)
	}
	n.mu.Unlock()
	n.store.Absorb(tr.Items)
	n.acceptServices(tr.Services)
	n.broadcast(EventReq{From: n.self, Joins: []dht.NodeRef{n.self}})
	return nil
}

// handleJoin serves the successor side of a join: insert the joiner,
// cede its arc (everything in (old predecessor, joiner]), and teach it
// the membership.
func (n *Node) handleJoin(r JoinReq) JoinResp {
	joiner := r.NewNode
	n.mu.Lock()
	oldPred, hadPred := n.predecessorLocked()
	n.insertLocked(joiner)
	table := make([]dht.NodeRef, len(n.table))
	copy(table, n.table)
	n.mu.Unlock()

	ceded := func(id core.ID) bool {
		if !hadPred {
			return !id.Between(joiner.ID, n.self.ID)
		}
		return id.Between(oldPred.ID, joiner.ID)
	}
	var items []dht.Item
	if !n.cfg.NoDataHandoff {
		items = n.store.CollectIf(ceded, true)
	}
	services := n.collectServices(ceded)
	return JoinResp{Items: items, Services: services, Table: table}
}

// Leave departs gracefully: hand the whole arc — replicas and service
// state — to the successor, then broadcast the departure so every
// member drops us in one event. O(1) bulk transfer plus the O(n)
// event fan-out that is the price of one-hop lookups.
func (n *Node) Leave() error {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return core.ErrStopped
	}
	n.alive = false // stop accepting protocol traffic
	skip := map[core.ID]bool{n.self.ID: true}
	succ, hasSucc := n.successorOfLocked(n.self.ID+1, skip)
	table := make([]dht.NodeRef, len(n.table))
	copy(table, n.table)
	n.mu.Unlock()

	var firstErr error
	if hasSucc && succ.ID != n.self.ID {
		everything := func(core.ID) bool { return true }
		var items []dht.Item
		if !n.cfg.NoDataHandoff {
			items = n.store.CollectIf(everything, true)
		}
		services := n.collectServices(everything)
		req := BulkReq{From: n.self, Items: items, Services: services}
		if _, err := n.call(context.Background(), succ.Addr, methodBulk, req); err != nil {
			firstErr = fmt.Errorf("onehop: leave handoff to %s: %w", succ.Addr, err)
		}
	}
	// The departure broadcast must complete before Leave returns: a
	// departing process (the CLI's ephemeral client peer, a node
	// handling SIGTERM) exits right after, and fire-and-forget sends
	// die with it — leaving every table pointing at a dead member
	// until the crash detector gets around to it.
	ev := EventReq{From: n.self, Leaves: []core.ID{n.self.ID}}
	others := make([]dht.NodeRef, 0, len(table))
	for _, ref := range table {
		if ref.ID != n.self.ID {
			others = append(others, ref)
		}
	}
	network.GoJoin(n.env, len(others), 10*time.Millisecond, func(i int) {
		n.metrics.eventsSent.Inc()
		n.call(context.Background(), others[i].Addr, methodEvent, ev)
	})
	return firstErr
}

// Start launches the crash detector: a periodic liveness probe of the
// table predecessor. A dead predecessor is evicted and its departure
// broadcast, turning a silent crash into the same event a graceful
// leave produces — the receiver side needs no third code path.
// Probing only the predecessor keeps steady-state maintenance at one
// message per node per period while still guaranteeing every crash has
// exactly one detector (its successor).
func (n *Node) Start() {
	n.mu.Lock()
	if n.started || !n.alive {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()

	rng := n.env.Rand("onehop-ping:" + string(n.self.Addr))
	n.env.Go(func() {
		for n.Alive() {
			jitter := time.Duration(rng.Int63n(int64(n.cfg.PingEvery)/4 + 1))
			if err := n.env.Sleep(n.cfg.PingEvery + jitter); err != nil {
				return
			}
			if !n.Alive() {
				return
			}
			n.checkPredecessor()
		}
	})
}

// checkPredecessor probes the table predecessor and broadcasts its
// death on failure.
func (n *Node) checkPredecessor() {
	pred := n.Predecessor()
	if pred.IsZero() {
		return
	}
	if _, err := n.call(context.Background(), pred.Addr, methodPing, PingReq{}); err == nil {
		return
	}
	n.evict(pred.ID)
	n.broadcast(EventReq{From: n.self, Leaves: []core.ID{pred.ID}})
}

// Nudge re-introduces this node to the overlay reachable through
// bootstrap — the post-heal rendezvous. During a partition each side's
// event broadcasts only reach its own members, so the tables diverge
// into two self-consistent overlays; no periodic message ever crosses.
// Nudge pulls the bootstrap's table (learning the other side wholesale)
// and broadcasts its own arrival to the merged membership, so when
// every healed peer nudges, both sides converge to the global table.
func (n *Node) Nudge(bootstrap network.Addr) error {
	if !n.Alive() {
		return core.ErrStopped
	}
	raw, err := n.call(context.Background(), bootstrap, methodTable, TableReq{})
	if err != nil {
		return fmt.Errorf("onehop: nudge via %s: %w", bootstrap, err)
	}
	n.mu.Lock()
	for _, ref := range raw.(TableResp).Table {
		n.insertLocked(ref)
	}
	n.mu.Unlock()
	n.broadcast(EventReq{From: n.self, Joins: []dht.NodeRef{n.self}})
	return nil
}

// broadcast fans an event out to every table member except self, each
// send as its own activity so a dead receiver only costs its own
// timeout.
func (n *Node) broadcast(ev EventReq) {
	for _, ref := range n.Table() {
		if ref.ID == n.self.ID {
			continue
		}
		n.metrics.eventsSent.Inc()
		to := ref.Addr
		n.env.Go(func() {
			n.call(context.Background(), to, methodEvent, ev)
		})
	}
}
