package onehop_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/dht/ringtest"
	"repro/internal/hashing"
	"repro/internal/network"
	"repro/internal/network/simwire"
	"repro/internal/onehop"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// factory plugs the one-hop ring into the cross-implementation
// conformance suite with the same test-brisk timers the suite's own
// sweep uses (internal/dht/ringtest). Running it here as well puts the
// package's own statements under its coverage gate.
func factory() ringtest.Factory {
	return ringtest.Factory{
		Name: "onehop",
		New: func(env network.Env, ep network.Endpoint, id core.ID) dht.RingNode {
			return onehop.New(env, ep, id, onehop.Config{
				PingEvery:  500 * time.Millisecond,
				RPCTimeout: 200 * time.Millisecond,
			})
		},
		Assemble: func(nodes []dht.RingNode) {
			concrete := make([]*onehop.Node, len(nodes))
			for i, n := range nodes {
				concrete[i] = n.(*onehop.Node)
			}
			onehop.AssembleRing(concrete)
		},
		MaxMeanHops:        func(n int) float64 { return 1.1 },
		SupportsNudgeMerge: true,
	}
}

func TestConformance(t *testing.T) { ringtest.Run(t, factory()) }

// TestSingleNodeOwnsEverything pins the ownership predicate's edge
// cases on a singleton ring: the only member owns everything, including
// its own identity and the ID just before it, and its table and
// predecessor describe the one-node topology.
func TestSingleNodeOwnsEverything(t *testing.T) {
	k := simnet.New(1)
	defer k.Stop()
	net := simwire.New(k, simwire.Config{
		LatencyMS:      stats.Normal{Mean: 5, Variance: 0, Min: 5},
		BandwidthKbps:  stats.Normal{Mean: 1e6, Variance: 0, Min: 1e6},
		DefaultTimeout: 200 * time.Millisecond,
	})
	ep := net.NewEndpoint("solo")
	n := onehop.New(net.Env(), ep, hashing.NodeID("solo"), onehop.Config{
		PingEvery:  500 * time.Millisecond,
		RPCTimeout: 200 * time.Millisecond,
	})
	n.CreateRing()
	for _, id := range []core.ID{0, n.Self().ID, n.Self().ID - 1, math.MaxUint64} {
		if !n.OwnsID(id) {
			t.Errorf("single node does not own %x", uint64(id))
		}
	}
	if got := n.TableSize(); got != 1 {
		t.Errorf("TableSize() = %d on a singleton ring, want 1", got)
	}
	if pred := n.Predecessor(); !pred.IsZero() {
		t.Errorf("singleton predecessor = %v, want zero (table holds only self)", pred)
	}
}
