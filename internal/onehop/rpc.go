package onehop

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
)

// Protocol method names.
const (
	methodOwner = "onehop.Owner"
	methodTable = "onehop.Table"
	methodJoin  = "onehop.Join"
	methodEvent = "onehop.Event"
	methodBulk  = "onehop.Bulk"
	methodPing  = "onehop.Ping"
)

// OwnerReq probes a candidate owner: "do you own Target, and if not,
// who does your table say is closer?" Exclude lists peers the caller
// observed dead during this lookup; the receiver evicts them too, which
// is how death observations propagate ahead of the periodic detector.
type OwnerReq struct {
	Target  core.ID
	Exclude []core.ID
}

// OwnerResp answers a probe. When Owns is false, Better names the
// receiver's best candidate for Target (zero when it has none beyond
// the caller's exclusions).
type OwnerResp struct {
	Owns   bool
	Better dht.NodeRef
}

// TableReq asks for the receiver's full routing table.
type TableReq struct{}

// TableResp carries the table.
type TableResp struct {
	Table []dht.NodeRef
}

// WireSize charges the membership payload against the bandwidth model.
func (r TableResp) WireSize() int {
	return network.DefaultWireSize + len(r.Table)*16
}

// JoinReq is sent by a joiner to its successor-to-be: "I am your new
// predecessor; cede my arc and teach me the membership".
type JoinReq struct {
	NewNode dht.NodeRef
}

// JoinResp carries the ceded replicas and service state plus the
// receiver's routing table.
type JoinResp struct {
	Items    []dht.Item
	Services map[string]network.Message
	Table    []dht.NodeRef
}

// WireSize charges the bulk payload against the bandwidth model.
func (r JoinResp) WireSize() int {
	n := network.DefaultWireSize + len(r.Table)*16
	for _, it := range r.Items {
		n += len(it.Qual) + len(it.Val.Data)
	}
	return n
}

// EventReq propagates membership changes — the D1HT event broadcast.
type EventReq struct {
	From   dht.NodeRef
	Joins  []dht.NodeRef
	Leaves []core.ID
}

// EventResp acknowledges an event.
type EventResp struct{}

// BulkReq pushes replicas and service state to the member taking over
// (graceful leaves).
type BulkReq struct {
	From     dht.NodeRef
	Items    []dht.Item
	Services map[string]network.Message
}

// WireSize charges the bulk payload against the bandwidth model.
func (r BulkReq) WireSize() int {
	n := network.DefaultWireSize
	for _, it := range r.Items {
		n += len(it.Qual) + len(it.Val.Data)
	}
	return n
}

// BulkResp acknowledges a bulk push.
type BulkResp struct{}

// PingReq probes liveness.
type PingReq struct{}

// PingResp acknowledges a ping.
type PingResp struct{}

func init() {
	network.RegisterMessage(OwnerReq{}, OwnerResp{}, TableReq{}, TableResp{},
		JoinReq{}, JoinResp{}, EventReq{}, EventResp{},
		BulkReq{}, BulkResp{}, PingReq{}, PingResp{})
}

// call invokes a protocol RPC with the node's per-probe patience.
func (n *Node) call(ctx context.Context, to network.Addr, method string, req network.Message) (network.Message, error) {
	return n.ep.Invoke(ctx, to, method, req, network.Call{Timeout: n.cfg.RPCTimeout})
}

func (n *Node) registerHandlers() {
	n.ep.Handle(methodOwner, func(_ network.Addr, req network.Message) (network.Message, error) {
		r := req.(OwnerReq)
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		// Honor the caller's death observations before answering: they
		// probed those peers moments ago, our periodic detector may be
		// half a period behind.
		n.mu.Lock()
		for _, id := range r.Exclude {
			n.removeLocked(id)
		}
		n.mu.Unlock()
		if n.OwnsID(r.Target) {
			return OwnerResp{Owns: true}, nil
		}
		skip := map[core.ID]bool{n.self.ID: true}
		for _, id := range r.Exclude {
			skip[id] = true
		}
		n.mu.Lock()
		better, ok := n.successorOfLocked(r.Target, skip)
		n.mu.Unlock()
		if !ok {
			return OwnerResp{Owns: false}, nil
		}
		return OwnerResp{Owns: false, Better: better}, nil
	})

	n.ep.Handle(methodTable, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		return TableResp{Table: n.Table()}, nil
	})

	n.ep.Handle(methodJoin, func(_ network.Addr, req network.Message) (network.Message, error) {
		r := req.(JoinReq)
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		return n.handleJoin(r), nil
	})

	n.ep.Handle(methodEvent, func(_ network.Addr, req network.Message) (network.Message, error) {
		r := req.(EventReq)
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		n.metrics.eventsRecv.Inc()
		n.mu.Lock()
		for _, ref := range r.Joins {
			n.insertLocked(ref)
		}
		for _, id := range r.Leaves {
			n.removeLocked(id)
		}
		n.mu.Unlock()
		return EventResp{}, nil
	})

	n.ep.Handle(methodBulk, func(_ network.Addr, req network.Message) (network.Message, error) {
		r := req.(BulkReq)
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		n.store.Absorb(r.Items)
		n.acceptServices(r.Services)
		return BulkResp{}, nil
	})

	n.ep.Handle(methodPing, func(_ network.Addr, req network.Message) (network.Message, error) {
		if !n.Alive() {
			return nil, core.ErrStopped
		}
		return PingResp{}, nil
	})
}

// Lookup implements dht.Ring. In steady state it costs exactly one
// remote probe: the table names the owner, the owner confirms. Under a
// stale table it degrades to a short forwarding chain — each probed
// non-owner answers with its own (fresher) candidate — and routes
// around dead peers by eviction, sharing the death observations with
// every subsequent probe. hops counts every remote probe made,
// including probes of peers that turned out dead or stale, so the
// lookup figure reports what the network actually carried.
func (n *Node) Lookup(ctx context.Context, id core.ID) (dht.NodeRef, int, error) {
	if !n.Alive() {
		return dht.NodeRef{}, 0, core.ErrStopped
	}
	n.metrics.lookups.Inc()
	if n.OwnsID(id) {
		n.metrics.hops.ObserveValue(0)
		return n.self, 0, nil
	}
	hops := 0
	// dead: probes that errored — evicted locally and shared on the
	// wire so receivers evict them too. skip: everything not worth
	// re-probing right now (self, the dead, and stale candidates that
	// answered "not mine" — alive, just not owners). A fresh death
	// observation clears the stale marks: a candidate that denied
	// ownership because its table still listed the dead node will own
	// once our Exclude makes it evict that node, so re-probing it is
	// productive, and each re-probe is paid for by a new death.
	dead := map[core.ID]bool{}
	skip := map[core.ID]bool{n.self.ID: true}
	resetStale := func() {
		skip = map[core.ID]bool{n.self.ID: true}
		for d := range dead {
			skip[d] = true
		}
	}
	nextCandidate := func() (dht.NodeRef, bool) {
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.successorOfLocked(id, skip)
	}
	cand, ok := nextCandidate()
	if !ok {
		n.metrics.lookupFails.Inc()
		return dht.NodeRef{}, hops, fmt.Errorf("onehop: no candidate for %s: %w", id, core.ErrUnreachable)
	}
	for fwd := 0; fwd < n.cfg.MaxForward; fwd++ {
		if err := network.CtxError(ctx); err != nil {
			return dht.NodeRef{}, hops, err
		}
		raw, err := n.call(ctx, cand.Addr, methodOwner,
			OwnerReq{Target: id, Exclude: deadList(dead)})
		hops++
		if err != nil {
			// Dead (or stopped) candidate: evict, remember, take our
			// next successor for the target.
			dead[cand.ID] = true
			n.evict(cand.ID)
			resetStale()
			next, ok := nextCandidate()
			if !ok {
				break
			}
			cand = next
			continue
		}
		resp := raw.(OwnerResp)
		if resp.Owns {
			n.metrics.hops.ObserveValue(int64(hops))
			// A multi-probe resolution means our table was stale; adopt
			// the owner so the next lookup is one hop again.
			if hops > 1 {
				n.mu.Lock()
				n.insertLocked(cand)
				n.mu.Unlock()
			}
			return cand, hops, nil
		}
		// Stale table: the candidate no longer owns the arc. Follow its
		// fresher view; it learned of the node that took over.
		n.metrics.staleFallbacks.Inc()
		skip[cand.ID] = true
		if resp.Better.IsZero() || skip[resp.Better.ID] {
			next, ok := nextCandidate()
			if !ok {
				break
			}
			cand = next
			continue
		}
		n.mu.Lock()
		n.insertLocked(resp.Better)
		n.mu.Unlock()
		cand = resp.Better
	}
	n.metrics.lookupFails.Inc()
	return dht.NodeRef{}, hops, fmt.Errorf("onehop: lookup %s exhausted forwarding: %w", id, core.ErrUnreachable)
}

func deadList(set map[core.ID]bool) []core.ID {
	if len(set) == 0 {
		return nil
	}
	out := make([]core.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	// Deterministic wire order (map iteration is not).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// collectServices gathers handover payloads for the ceded range.
func (n *Node) collectServices(ceded func(core.ID) bool) map[string]network.Message {
	n.mu.Lock()
	hooks := make([]dht.Handover, len(n.handover))
	copy(hooks, n.handover)
	n.mu.Unlock()
	var out map[string]network.Message
	for _, h := range hooks {
		if msg := h.Collect(ceded); msg != nil {
			if out == nil {
				out = make(map[string]network.Message)
			}
			out[h.Name()] = msg
		}
	}
	return out
}

// acceptServices routes handover payloads to local services.
func (n *Node) acceptServices(payloads map[string]network.Message) {
	if len(payloads) == 0 {
		return
	}
	n.mu.Lock()
	hooks := make([]dht.Handover, len(n.handover))
	copy(hooks, n.handover)
	n.mu.Unlock()
	for _, h := range hooks {
		if msg, ok := payloads[h.Name()]; ok {
			h.Accept(msg)
		}
	}
}
