// Package onehop is the repo's third ring substrate: a single-hop DHT in
// the style of D1HT (Monnerat & Amorim, "An effective single-hop
// distributed hash table"). Every node keeps a full routing table —
// every member's (ID, address) — maintained by event propagation: a
// join, leave or detected crash is broadcast to the whole table, so in
// steady state the node responsible for any ring position is known
// locally and Lookup resolves in a single confirmation hop.
//
// The trade the paper's cost model cares about is maintenance traffic
// versus lookup hops: chord pays O(log n) routing messages per lookup
// and O(log n) periodic repair; onehop pays O(1) lookup messages but
// O(n) broadcast per membership event. Under churn the table is briefly
// stale, so Lookup degrades gracefully: a probed candidate that no
// longer owns the position forwards the caller to a better node from
// its (fresher) table, and dead candidates are evicted and routed
// around — correctness never rests on table freshness.
//
// Ownership follows the same successor rule as chord: a node owns the
// arc (table-predecessor, self]. Because every node evaluates the rule
// against its own table, two nodes with different views can briefly
// both claim an arc; the store layer's owns-check plus the services'
// timestamp discipline make that a liveness hiccup, not a correctness
// hole — exactly the argument chord already relies on during
// stabilization.
package onehop

import (
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/store"
)

// Config tunes a one-hop node.
type Config struct {
	// RPCTimeout is the per-probe patience — the failure-detection
	// threshold for one round trip. Zero selects 2s.
	RPCTimeout time.Duration
	// PingEvery is the period of the predecessor liveness check that
	// turns silent crashes into broadcast leave events. Zero selects 30s.
	PingEvery time.Duration
	// MaxForward bounds the forwarding chain a lookup follows when the
	// local table is stale. Zero selects 8 — generous, since each
	// forward follows a strictly fresher table.
	MaxForward int
	// NoDataHandoff keeps replicas on the old responsible across
	// membership changes — the paper's data model, where a joiner
	// starts empty and republish/repair restore reachability.
	NoDataHandoff bool
	// Store selects the replica-store backing; nil means volatile memory.
	Store store.Store
	// Obs receives routing and maintenance metrics when non-nil.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.PingEvery <= 0 {
		c.PingEvery = 30 * time.Second
	}
	if c.MaxForward <= 0 {
		c.MaxForward = 8
	}
	return c
}

// Node is one one-hop peer.
type Node struct {
	env   network.Env
	ep    network.Endpoint
	cfg   Config
	self  dht.NodeRef
	store *dht.LocalStore

	mu       sync.Mutex
	table    []dht.NodeRef // sorted by ID, always contains self
	alive    bool
	started  bool
	handover []dht.Handover

	metrics oneHopMetrics
}

var _ dht.RingNode = (*Node)(nil)

// oneHopMetrics are the substrate's observables: atomic counters and the
// locked histogram only — no clock, no random stream — so
// instrumentation cannot perturb a replay.
type oneHopMetrics struct {
	hops           *obs.Histogram
	lookups        *obs.Counter
	lookupFails    *obs.Counter
	staleFallbacks *obs.Counter
	eventsSent     *obs.Counter
	eventsRecv     *obs.Counter
}

func newOneHopMetrics(r *obs.Registry) oneHopMetrics {
	return oneHopMetrics{
		hops: r.ValueHistogram("dcdht_onehop_lookup_hops",
			"Remote probes per completed lookup (1 in steady state)."),
		lookups: r.Counter("dcdht_onehop_lookups_total",
			"Lookups issued from this node."),
		lookupFails: r.Counter("dcdht_onehop_lookup_failures_total",
			"Lookups that exhausted forwarding without finding the owner."),
		staleFallbacks: r.Counter("dcdht_onehop_stale_fallbacks_total",
			"Probes answered 'not mine' by a stale-table candidate (forwarded)."),
		eventsSent: r.Counter("dcdht_onehop_events_sent_total",
			"Membership event messages broadcast from this node."),
		eventsRecv: r.Counter("dcdht_onehop_events_received_total",
			"Membership event messages applied from peers."),
	}
}

// New creates a node with the given identity on an endpoint. Call
// CreateRing or Join before Start.
func New(env network.Env, ep network.Endpoint, id core.ID, cfg Config) *Node {
	n := &Node{
		env:     env,
		ep:      ep,
		cfg:     cfg.withDefaults(),
		self:    dht.NodeRef{ID: id, Addr: ep.Addr()},
		alive:   true,
		metrics: newOneHopMetrics(cfg.Obs),
	}
	if cfg.Store != nil {
		n.store = dht.NewLocalStoreOn(cfg.Store)
	} else {
		n.store = dht.NewLocalStore()
	}
	n.table = []dht.NodeRef{n.self}
	n.registerHandlers()
	dht.RegisterStore(ep, n.store, n.OwnsID)
	if r := cfg.Obs; r != nil {
		r.GaugeFunc("dcdht_onehop_table_size", "Members in the full routing table.", func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return float64(len(n.table))
		})
	}
	return n
}

// Self implements dht.Ring.
func (n *Node) Self() dht.NodeRef { return n.self }

// Endpoint implements dht.Ring.
func (n *Node) Endpoint() network.Endpoint { return n.ep }

// Env implements dht.Ring.
func (n *Node) Env() network.Env { return n.env }

// Store exposes the local replica store.
func (n *Node) Store() *dht.LocalStore { return n.store }

// Config returns the effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Alive implements dht.Ring.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// RegisterHandover attaches a service to responsibility transfers.
func (n *Node) RegisterHandover(h dht.Handover) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handover = append(n.handover, h)
}

// OwnsID implements dht.Ring: the node owns id iff id lies in
// (table-predecessor, self]. A table of one owns everything.
func (n *Node) OwnsID(id core.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return false
	}
	pred, ok := n.predecessorLocked()
	if !ok {
		return true
	}
	return id.Between(pred.ID, n.self.ID)
}

// Predecessor returns this node's table predecessor (zero when the
// table holds only self).
func (n *Node) Predecessor() dht.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	pred, ok := n.predecessorLocked()
	if !ok {
		return dht.NodeRef{}
	}
	return pred
}

// TableSize returns the number of known members (including self).
func (n *Node) TableSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.table)
}

// Table returns a copy of the routing table, sorted by ID.
func (n *Node) Table() []dht.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]dht.NodeRef, len(n.table))
	copy(out, n.table)
	return out
}

// CreateRing bootstraps a new overlay with this node as sole member.
func (n *Node) CreateRing() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.table = []dht.NodeRef{n.self}
}

// Crash kills the node without ceremony: no handover, no events. The
// rest of the overlay discovers the death by failed probes.
func (n *Node) Crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = false
	n.store.Crash()
}

// --- table helpers (callers hold n.mu) ---

// predecessorLocked returns the member immediately counter-clockwise of
// self, or ok=false when the table holds only self.
func (n *Node) predecessorLocked() (dht.NodeRef, bool) {
	if len(n.table) <= 1 {
		return dht.NodeRef{}, false
	}
	i := n.indexOfLocked(n.self.ID)
	return n.table[(i-1+len(n.table))%len(n.table)], true
}

// indexOfLocked returns self's position in the sorted table.
func (n *Node) indexOfLocked(id core.ID) int {
	return sort.Search(len(n.table), func(i int) bool { return n.table[i].ID >= id })
}

// successorOfLocked returns the first member at or clockwise of id,
// skipping IDs in skip. ok=false when every member is skipped.
func (n *Node) successorOfLocked(id core.ID, skip map[core.ID]bool) (dht.NodeRef, bool) {
	m := len(n.table)
	if m == 0 {
		return dht.NodeRef{}, false
	}
	start := sort.Search(m, func(i int) bool { return n.table[i].ID >= id })
	for k := 0; k < m; k++ {
		cand := n.table[(start+k)%m]
		if skip != nil && skip[cand.ID] {
			continue
		}
		return cand, true
	}
	return dht.NodeRef{}, false
}

// insertLocked adds (or refreshes) a member, keeping the table sorted.
func (n *Node) insertLocked(ref dht.NodeRef) {
	if ref.IsZero() {
		return
	}
	i := n.indexOfLocked(ref.ID)
	if i < len(n.table) && n.table[i].ID == ref.ID {
		n.table[i] = ref // refresh address
		return
	}
	n.table = append(n.table, dht.NodeRef{})
	copy(n.table[i+1:], n.table[i:])
	n.table[i] = ref
}

// removeLocked drops a member by ID. Self is never removed.
func (n *Node) removeLocked(id core.ID) {
	if id == n.self.ID {
		return
	}
	i := n.indexOfLocked(id)
	if i < len(n.table) && n.table[i].ID == id {
		n.table = append(n.table[:i], n.table[i+1:]...)
	}
}

// evict drops a member observed dead during a lookup.
func (n *Node) evict(id core.ID) {
	n.mu.Lock()
	n.removeLocked(id)
	n.mu.Unlock()
}

// AssembleRing installs the complete membership in every node
// administratively, with no protocol traffic — the same shortcut
// chord.AssembleRing takes so large simulations start converged and
// churn then exercises the real join/leave/event paths.
func AssembleRing(nodes []*Node) {
	if len(nodes) == 0 {
		return
	}
	refs := make([]dht.NodeRef, len(nodes))
	for i, nd := range nodes {
		refs[i] = nd.self
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].ID < refs[j].ID })
	for _, nd := range nodes {
		table := make([]dht.NodeRef, len(refs))
		copy(table, refs)
		nd.mu.Lock()
		nd.table = table
		nd.mu.Unlock()
	}
}
