package gateway

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
	"repro/internal/network/simwire"
	"repro/internal/simnet"
)

// ---- fakes --------------------------------------------------------------

// fakeStore is the shared "ring state" behind every fake backend: one
// timestamped value per key, with a monotonic grant counter standing in
// for KTS.
type fakeStore struct {
	mu    sync.Mutex
	next  uint64
	ts    map[core.Key]core.Timestamp
	data  map[core.Key][]byte
	gets  int
	puts  int
	lasts int
	// pols records the policy of every Retrieve that reached a
	// backend, in arrival order.
	pols []dht.ReadPolicy
}

func newFakeStore() *fakeStore {
	return &fakeStore{ts: make(map[core.Key]core.Timestamp), data: make(map[core.Key][]byte)}
}

// fakeBackend serves reads from a snapshot taken at arrival time and
// then sleeps lat — modelling a retrieve that probes replicas before a
// racing write lands. That snapshot ordering is what the coalescing
// floor check must defend against.
type fakeBackend struct {
	env network.Env
	lat time.Duration
	st  *fakeStore
}

func (b *fakeBackend) Insert(_ context.Context, k core.Key, data []byte) (dht.OpResult, error) {
	b.st.mu.Lock()
	b.st.puts++
	b.st.next++
	ts := core.TS(b.st.next)
	b.st.ts[k] = ts
	b.st.data[k] = data
	b.st.mu.Unlock()
	if err := b.env.Sleep(b.lat / 4); err != nil {
		return dht.OpResult{}, err
	}
	return dht.OpResult{TS: ts, Stored: 1, Currency: dht.CurrencyProven, Floor: ts}, nil
}

func (b *fakeBackend) Retrieve(_ context.Context, k core.Key, pol dht.ReadPolicy) (dht.OpResult, error) {
	b.st.mu.Lock()
	b.st.gets++
	b.st.pols = append(b.st.pols, pol)
	ts, data := b.st.ts[k], b.st.data[k]
	b.st.mu.Unlock()
	if err := b.env.Sleep(b.lat); err != nil {
		return dht.OpResult{}, err
	}
	res := dht.OpResult{Data: data, TS: ts, Retrieved: 1}
	switch {
	case pol.FloorFirst && !pol.Floor.IsZero():
		if ts.Less(pol.Floor) {
			return dht.OpResult{}, core.ErrNoCurrentReplica
		}
		res.Currency, res.Floor = dht.CurrencySessionFloor, pol.Floor
	case pol.Level == dht.LevelEventual:
		res.Currency = dht.CurrencyUnknown
	default:
		// Current and authoritative-bounded reads prove currency.
		res.Currency, res.Floor = dht.CurrencyProven, ts
	}
	return res, nil
}

func (b *fakeBackend) LastTS(_ context.Context, k core.Key) (core.Timestamp, error) {
	b.st.mu.Lock()
	b.st.lasts++
	ts := b.st.ts[k]
	b.st.mu.Unlock()
	if err := b.env.Sleep(b.lat / 4); err != nil {
		return core.TSZero, err
	}
	return ts, nil
}

// runSim executes fn as a kernel process and drives the kernel to
// idleness. Assertions inside fn must use t.Errorf (never Fatal — fn
// does not run on the test goroutine).
func runSim(seed int64, fn func(env network.Env)) {
	k := simnet.New(seed)
	env := simwire.Env(k)
	k.Go(func() { fn(env) })
	k.RunUntilIdle()
}

func newSimGateway(env network.Env, backends, latMS int) (*Gateway, *fakeStore) {
	st := newFakeStore()
	pool := make([]Backend, backends)
	for i := range pool {
		pool[i] = &fakeBackend{env: env, lat: time.Duration(latMS) * time.Millisecond, st: st}
	}
	g, err := New(pool, Config{Env: env})
	if err != nil {
		panic(err)
	}
	return g, st
}

// ---- balancer -----------------------------------------------------------

func TestBalancerRoundRobinAndLeastInflight(t *testing.T) {
	now := time.Duration(0)
	b := newBalancer(3, func() time.Duration { return now }, 0, 0)
	// Empty pool: rotation should visit all three slots.
	seen := map[int]bool{}
	var held []int
	for i := 0; i < 3; i++ {
		j := b.acquire()
		seen[j] = true
		held = append(held, j)
	}
	if len(seen) != 3 {
		t.Fatalf("rotation visited %d distinct slots, want 3", len(seen))
	}
	// Release one slot; it is now least-inflight and must be chosen.
	b.release(held[1], nil)
	if got := b.acquire(); got != held[1] {
		t.Fatalf("least-inflight pick = %d, want %d", got, held[1])
	}
}

func TestBalancerCooldown(t *testing.T) {
	now := time.Duration(0)
	b := newBalancer(2, func() time.Duration { return now }, 2, time.Second)
	// Fail slot 0 twice in a row: it goes on cooldown.
	for i := 0; i < 2; i++ {
		j := 0
		b.slots[j].inflight++ // simulate acquire of slot 0 specifically
		b.release(j, fmt.Errorf("boom"))
	}
	for i := 0; i < 4; i++ {
		j := b.acquire()
		if j == 0 {
			t.Fatalf("acquired cooling slot 0 while slot 1 healthy")
		}
		b.release(j, nil)
	}
	// After the cooldown passes, slot 0 is eligible again.
	now = 2 * time.Second
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		j := b.acquire()
		seen[j] = true
	}
	if !seen[0] {
		t.Fatalf("slot 0 not reused after cooldown expiry")
	}
}

func TestBalancerAllCoolingStillServes(t *testing.T) {
	now := time.Duration(0)
	b := newBalancer(2, func() time.Duration { return now }, 1, time.Minute)
	for j := 0; j < 2; j++ {
		b.slots[j].inflight++
		b.release(j, fmt.Errorf("down"))
	}
	// Both benched: acquire must still hand out a slot.
	j := b.acquire()
	if j != 0 && j != 1 {
		t.Fatalf("acquire returned %d", j)
	}
}

// ---- cache --------------------------------------------------------------

func TestTSCacheSemantics(t *testing.T) {
	now := time.Duration(0)
	c := newTSCache(func() time.Duration { return now })
	k := core.Key("k")

	c.note(k, core.TSZero) // ignored
	if _, _, ok := c.cached(k); ok {
		t.Fatalf("zero timestamp was cached")
	}
	c.note(k, core.TS(5))
	now = 10 * time.Millisecond
	c.note(k, core.TS(3)) // older: ignored
	ts, age, ok := c.cached(k)
	if !ok || ts != core.TS(5) || age != 10*time.Millisecond {
		t.Fatalf("cached = %v age %v ok %v, want ts 5 age 10ms", ts, age, ok)
	}
	c.note(k, core.TS(5)) // equal: refreshes age
	ts, age, _ = c.cached(k)
	if ts != core.TS(5) || age != 0 {
		t.Fatalf("equal-ts re-confirm: ts %v age %v, want ts 5 age 0", ts, age)
	}
	c.note(k, core.TS(9)) // newer wins
	if ts, _, _ := c.cached(k); ts != core.TS(9) {
		t.Fatalf("newer ts lost: %v", ts)
	}
}

// ---- coalescing ---------------------------------------------------------

// TestCoalescingHotKey is the deterministic heart of the tentpole: N
// concurrent same-key current-level readers must cost one backend op,
// and every reader sees the identical result.
func TestCoalescingHotKey(t *testing.T) {
	const readers = 16
	runSim(1, func(env network.Env) {
		g, st := newSimGateway(env, 3, 20)
		ctx := context.Background()
		if _, err := g.Insert(ctx, "hot", []byte("v1")); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		preGets := func() int { st.mu.Lock(); defer st.mu.Unlock(); return st.gets }()
		results := make([]dht.OpResult, readers)
		network.GoJoin(env, readers, time.Millisecond, func(i int) {
			res, err := g.Retrieve(ctx, "hot", dht.ReadPolicy{Level: dht.LevelCurrent})
			if err != nil {
				t.Errorf("reader %d: %v", i, err)
			}
			results[i] = res
		})
		st.mu.Lock()
		gets := st.gets - preGets
		st.mu.Unlock()
		if gets != 1 {
			t.Errorf("backend gets = %d, want 1 (coalesced)", gets)
		}
		for i, r := range results {
			if string(r.Data) != "v1" || r.Currency != dht.CurrencyProven {
				t.Errorf("reader %d got %q currency %v", i, r.Data, r.Currency)
			}
		}
		s := g.Stats()
		if s.Flights != 1 || s.Coalesced != readers-1 {
			t.Errorf("stats flights=%d coalesced=%d, want 1 and %d", s.Flights, s.Coalesced, readers-1)
		}
	})
}

// TestCoalescingWriteRacingFlight pins the session-floor guarantee: a
// reader whose floor rose past an in-progress flight's snapshot must
// NOT be served the pre-write value.
func TestCoalescingWriteRacingFlight(t *testing.T) {
	runSim(2, func(env network.Env) {
		g, st := newSimGateway(env, 2, 50)
		ctx := context.Background()
		put1, err := g.Insert(ctx, "k", []byte("old"))
		if err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		var raceRes dht.OpResult
		var raceErr error
		network.GoJoin(env, 2, time.Millisecond, func(i int) {
			switch i {
			case 0:
				// Session A: floor from the first write; its read
				// snapshots "old" and holds the flight open for 50ms.
				g.Retrieve(ctx, "k", dht.ReadPolicy{Floor: put1.TS, FloorFirst: true})
			case 1:
				// Session B: sleeps into A's flight window, writes,
				// then reads with its new floor.
				env.Sleep(10 * time.Millisecond)
				put2, err := g.Insert(ctx, "k", []byte("new"))
				if err != nil {
					t.Errorf("insert 2: %v", err)
					return
				}
				raceRes, raceErr = g.Retrieve(ctx, "k", dht.ReadPolicy{Floor: put2.TS, FloorFirst: true})
			}
		})
		if raceErr != nil {
			t.Errorf("racing read: %v", raceErr)
		}
		if string(raceRes.Data) != "new" {
			t.Errorf("racing read returned %q — lost the write", raceRes.Data)
		}
		s := g.Stats()
		if s.FlightRetries != 1 {
			t.Errorf("flight retries = %d, want 1 (floor rejection)", s.FlightRetries)
		}
		st.mu.Lock()
		gets := st.gets
		st.mu.Unlock()
		if gets != 2 {
			t.Errorf("backend gets = %d, want 2 (flight + floor-forced re-read)", gets)
		}
	})
}

// TestCoalescingClassesDoNotMix: a current reader must never be served
// an eventual flight's result.
func TestCoalescingClassesDoNotMix(t *testing.T) {
	runSim(3, func(env network.Env) {
		g, st := newSimGateway(env, 2, 30)
		ctx := context.Background()
		g.Insert(ctx, "k", []byte("v"))
		var cur, ev dht.OpResult
		network.GoJoin(env, 2, time.Millisecond, func(i int) {
			if i == 0 {
				ev, _ = g.Retrieve(ctx, "k", dht.ReadPolicy{Level: dht.LevelEventual})
			} else {
				cur, _ = g.Retrieve(ctx, "k", dht.ReadPolicy{Level: dht.LevelCurrent})
			}
		})
		if ev.Currency == dht.CurrencyProven {
			t.Errorf("eventual read claims proven currency")
		}
		if cur.Currency != dht.CurrencyProven {
			t.Errorf("current read lost its proof: %v", cur.Currency)
		}
		st.mu.Lock()
		gets := st.gets
		st.mu.Unlock()
		if gets != 2 {
			t.Errorf("backend gets = %d, want 2 (separate flights per class)", gets)
		}
	})
}

// ---- bounded reads from the gateway cache -------------------------------

func TestBoundedServedFromGatewayCache(t *testing.T) {
	runSim(4, func(env network.Env) {
		g, st := newSimGateway(env, 2, 5)
		ctx := context.Background()
		put, err := g.Insert(ctx, "k", []byte("v"))
		if err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		bounded := dht.ReadPolicy{Level: dht.LevelBounded, Bound: time.Second}
		res, err := g.Retrieve(ctx, "k", bounded)
		if err != nil {
			t.Errorf("bounded get: %v", err)
			return
		}
		if res.Currency != dht.CurrencyWithinBound {
			t.Errorf("currency = %v, want WithinBound", res.Currency)
		}
		if res.Floor != put.TS {
			t.Errorf("floor = %v, want the cached put ts %v", res.Floor, put.TS)
		}
		st.mu.Lock()
		gotPol := st.pols[len(st.pols)-1]
		st.mu.Unlock()
		if !gotPol.FloorFirst || gotPol.Floor != put.TS {
			t.Errorf("backend saw policy %+v, want floor-first at the cached ts", gotPol)
		}
		s := g.Stats()
		if s.CacheServedGets != 1 || s.CacheHits != 1 {
			t.Errorf("stats = %+v, want one cache-served get", s)
		}

		// Let the entry age past the bound: the gateway must fall back
		// to the caller's authoritative bounded policy.
		env.Sleep(2 * time.Second)
		res, err = g.Retrieve(ctx, "k", bounded)
		if err != nil {
			t.Errorf("aged bounded get: %v", err)
			return
		}
		st.mu.Lock()
		gotPol = st.pols[len(st.pols)-1]
		st.mu.Unlock()
		if gotPol.FloorFirst || gotPol.Level != dht.LevelBounded {
			t.Errorf("aged entry: backend saw %+v, want the original bounded policy", gotPol)
		}
		if s := g.Stats(); s.CacheMisses != 1 {
			t.Errorf("cache misses = %d, want 1", s.CacheMisses)
		}
		// That authoritative (Proven) re-read re-primed the cache.
		if res.Currency != dht.CurrencyProven {
			t.Errorf("authoritative re-read currency = %v", res.Currency)
		}
		if _, _, ok := g.cache.cached("k"); !ok {
			t.Errorf("proven read did not re-prime the cache")
		}
	})
}

func TestEventualReadsPassThroughUnchanged(t *testing.T) {
	runSim(5, func(env network.Env) {
		g, st := newSimGateway(env, 2, 5)
		ctx := context.Background()
		g.Insert(ctx, "k", []byte("v"))
		res, err := g.Retrieve(ctx, "k", dht.ReadPolicy{Level: dht.LevelEventual})
		if err != nil {
			t.Errorf("eventual get: %v", err)
			return
		}
		if res.Currency != dht.CurrencyUnknown {
			t.Errorf("eventual read currency rewritten to %v", res.Currency)
		}
		st.mu.Lock()
		pol := st.pols[len(st.pols)-1]
		st.mu.Unlock()
		if pol.Level != dht.LevelEventual || pol.FloorFirst {
			t.Errorf("eventual policy mutated: %+v", pol)
		}
	})
}

// ---- last_ts ------------------------------------------------------------

func TestLastTSServedFromCache(t *testing.T) {
	runSim(6, func(env network.Env) {
		g, st := newSimGateway(env, 2, 5)
		ctx := context.Background()
		put, _ := g.Insert(ctx, "k", []byte("v"))

		// Eventual and in-bound Bounded: pure cache, zero backend ops.
		ts, err := g.LastTS(ctx, "k", dht.ReadPolicy{Level: dht.LevelEventual})
		if err != nil || ts != put.TS {
			t.Errorf("eventual last_ts = %v, %v; want %v", ts, err, put.TS)
		}
		ts, err = g.LastTS(ctx, "k", dht.ReadPolicy{Level: dht.LevelBounded, Bound: time.Minute})
		if err != nil || ts != put.TS {
			t.Errorf("bounded last_ts = %v, %v; want %v", ts, err, put.TS)
		}
		st.mu.Lock()
		lasts := st.lasts
		st.mu.Unlock()
		if lasts != 0 {
			t.Errorf("backend last_ts calls = %d, want 0 (cache-served)", lasts)
		}
		if s := g.Stats(); s.CacheServedLastTS != 2 {
			t.Errorf("cache-served last_ts = %d, want 2", s.CacheServedLastTS)
		}

		// Current level must always forward.
		if _, err := g.LastTS(ctx, "k", dht.ReadPolicy{}); err != nil {
			t.Errorf("current last_ts: %v", err)
		}
		st.mu.Lock()
		lasts = st.lasts
		st.mu.Unlock()
		if lasts != 1 {
			t.Errorf("backend last_ts calls = %d, want 1 after current-level ask", lasts)
		}
	})
}

// ---- batches ------------------------------------------------------------

func TestMultiOpsFanOut(t *testing.T) {
	runSim(7, func(env network.Env) {
		g, st := newSimGateway(env, 3, 10)
		ctx := context.Background()
		items := []Item{{"a", []byte("1")}, {"b", []byte("2")}, {"c", []byte("3")}}
		for i, r := range g.InsertMulti(ctx, items) {
			if r.Err != nil {
				t.Errorf("insert %d: %v", i, r.Err)
			}
		}
		// A batch with a duplicated hot key: the duplicates coalesce.
		keys := []core.Key{"a", "a", "a", "b"}
		out := g.RetrieveMulti(ctx, keys, dht.ReadPolicy{Level: dht.LevelCurrent})
		for i, r := range out {
			if r.Err != nil {
				t.Errorf("get %d: %v", i, r.Err)
				continue
			}
			want := "1"
			if keys[i] == "b" {
				want = "2"
			}
			if string(r.Res.Data) != want {
				t.Errorf("get %d = %q, want %q", i, r.Res.Data, want)
			}
		}
		st.mu.Lock()
		gets := st.gets
		st.mu.Unlock()
		if gets != 2 {
			t.Errorf("backend gets = %d, want 2 (3×a coalesced + b)", gets)
		}
	})
}

// ---- property test ------------------------------------------------------

// TestCoalescingPropertySim is the property-style acceptance test under
// deterministic simulation: W concurrent workers mix writes and
// session-floor reads over a small hot keyspace; every read must return
// a value at or above the reader's floor at issue time, and coalescing
// must actually fire. The same seed must reproduce the same schedule.
func TestCoalescingPropertySim(t *testing.T) {
	run := func(seed int64) (Stats, int) {
		var st *fakeStore
		var g *Gateway
		runSim(seed, func(env network.Env) {
			g, st = newSimGateway(env, 3, 15)
			ctx := context.Background()
			keys := []core.Key{"h0", "h1", "h2"}
			for _, k := range keys {
				g.Insert(ctx, k, []byte("seed"))
			}
			const workers, ops = 12, 40
			network.GoJoin(env, workers, time.Millisecond, func(w int) {
				rng := env.Rand(fmt.Sprintf("worker-%d", w))
				floors := map[core.Key]core.Timestamp{}
				for i := 0; i < ops; i++ {
					k := keys[rng.Intn(len(keys))]
					if rng.Intn(5) == 0 {
						res, err := g.Insert(ctx, k, []byte(fmt.Sprintf("w%d-%d", w, i)))
						if err != nil {
							t.Errorf("w%d put: %v", w, err)
							continue
						}
						if res.TS.Less(floors[k]) {
							t.Errorf("w%d: put ts went backwards", w)
						}
						floors[k] = res.TS
					} else {
						floor := floors[k]
						res, err := g.Retrieve(ctx, k, dht.ReadPolicy{Floor: floor, FloorFirst: floor != core.TSZero})
						if err != nil {
							t.Errorf("w%d get %s: %v", w, k, err)
							continue
						}
						if res.TS.Less(floor) {
							t.Errorf("w%d: read %v staler than session floor %v", w, res.TS, floor)
						}
						if floor = res.TS.Max(floor); true {
							floors[k] = floor
						}
					}
					env.Sleep(time.Duration(rng.Intn(8)) * time.Millisecond)
				}
			})
		})
		st.mu.Lock()
		gets := st.gets
		st.mu.Unlock()
		return g.Stats(), gets
	}
	s, gets := run(42)
	if s.Coalesced == 0 {
		t.Fatalf("property run never coalesced — schedule not exercising the flight path (stats %+v)", s)
	}
	if int(s.Flights+s.FlightRetries) != gets {
		t.Errorf("backend gets %d != flights %d + retries %d", gets, s.Flights, s.FlightRetries)
	}
	// Determinism: the same seed must replay to identical counters.
	s2, gets2 := run(42)
	if s != s2 || gets != gets2 {
		t.Errorf("same seed diverged: %+v/%d vs %+v/%d", s, gets, s2, gets2)
	}
	// And a different seed should (virtually always) differ somewhere.
	if s3, _ := run(43); s3 == s {
		t.Logf("note: seed 43 produced identical stats to seed 42 (possible but unlikely)")
	}
}

// ---- config validation --------------------------------------------------

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatalf("New with no backends succeeded")
	}
	if _, err := New([]Backend{&fakeBackend{}}, Config{}); err == nil {
		t.Fatalf("New without Env succeeded")
	}
}
