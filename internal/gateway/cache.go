package gateway

import (
	"sync"
	"time"

	"repro/internal/core"
)

// cacheCap bounds the gateway's last-ts cache, mirroring the KTS peer
// cache: at ~24 bytes per entry the worst case stays near 1.5 MB.
const cacheCap = 1 << 16

// cacheEntry is one observed last-ts with its observation time.
type cacheEntry struct {
	ts core.Timestamp
	at time.Duration
}

// tsCache is the gateway-local last-ts cache. It reuses the KTS peer
// cache semantics pinned by the kts package's tests: zero timestamps
// are ignored, newer observations win, an equal timestamp refreshes the
// entry's age (the authority re-confirmed it), and only a genuinely new
// key can evict once the cap is reached.
//
// Soundness rule — enforced by callers, documented here because it is
// what makes the cache usable for Bounded reads: only authoritative
// timestamps may be noted (a Put's granted timestamp, a Proven get's
// target, a forwarded Current-level LastTS answer). An entry then
// witnesses "last_ts(k) was ts at time at", so age = now-at bounds the
// staleness of any value ≥ ts exactly as the KTS cache does, modulo the
// same ε (one op duration) fudge documented in docs/CONSISTENCY.md.
type tsCache struct {
	now func() time.Duration

	mu sync.Mutex
	m  map[core.Key]cacheEntry
}

func newTSCache(now func() time.Duration) *tsCache {
	return &tsCache{now: now, m: make(map[core.Key]cacheEntry)}
}

// note records an observed authoritative last-ts for k.
func (c *tsCache) note(k core.Key, ts core.Timestamp) {
	if ts.IsZero() {
		return
	}
	at := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		if ts.Less(e.ts) {
			return
		}
	} else if len(c.m) >= cacheCap {
		// Only a genuinely new key can grow the cache past the cap;
		// overwriting an existing entry never evicts a warm floor.
		for victim := range c.m {
			delete(c.m, victim)
			break
		}
	}
	c.m[k] = cacheEntry{ts: ts, at: at}
}

// cached returns the entry for k and its age, if one exists.
func (c *tsCache) cached(k core.Key) (core.Timestamp, time.Duration, bool) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if !ok {
		return core.TSZero, 0, false
	}
	return e.ts, now - e.at, true
}

// len reports the number of cached keys.
func (c *tsCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
