package gateway

import (
	"sync"
	"time"
)

// Balancer defaults: a backend that fails defaultCooldownAfter calls in
// a row is benched for defaultCooldown before the scan considers it
// healthy again.
const (
	defaultCooldownAfter = 3
	defaultCooldown      = 2 * time.Second
)

// slot is the balancer's per-backend health and load record.
type slot struct {
	inflight  int
	consecErr int
	coolUntil time.Duration
}

// balancer spreads operations over the backend pool: round-robin to
// rotate the scan start (so equal-load backends share work), then
// least-inflight among healthy slots. A backend accumulating
// consecutive errors is put on cooldown and skipped until the clock
// passes coolUntil — unless every slot is cooling, in which case the
// least-loaded one is used anyway (a gateway with no healthy backends
// should degrade, not refuse).
type balancer struct {
	now           func() time.Duration
	cooldownAfter int
	cooldown      time.Duration

	mu    sync.Mutex
	slots []slot
	next  int
}

func newBalancer(n int, now func() time.Duration, after int, cooldown time.Duration) *balancer {
	if after <= 0 {
		after = defaultCooldownAfter
	}
	if cooldown <= 0 {
		cooldown = defaultCooldown
	}
	return &balancer{
		now:           now,
		cooldownAfter: after,
		cooldown:      cooldown,
		slots:         make([]slot, n),
	}
}

// acquire picks a backend index and charges one inflight op to it.
// Every acquire must be paired with a release.
func (b *balancer) acquire() int {
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	start := b.next
	b.next = (b.next + 1) % len(b.slots)
	best, bestAny := -1, start
	for off := 0; off < len(b.slots); off++ {
		i := (start + off) % len(b.slots)
		if b.slots[i].inflight < b.slots[bestAny].inflight {
			bestAny = i
		}
		if b.slots[i].coolUntil > now {
			continue
		}
		if best < 0 || b.slots[i].inflight < b.slots[best].inflight {
			best = i
		}
	}
	if best < 0 {
		best = bestAny
	}
	b.slots[best].inflight++
	return best
}

// release returns the inflight charge taken by acquire and folds the
// call's outcome into the slot's health: success resets the error run,
// failure extends it and benches the slot once it reaches the limit.
func (b *balancer) release(i int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.slots[i]
	s.inflight--
	if err == nil {
		s.consecErr = 0
		return
	}
	s.consecErr++
	if s.consecErr >= b.cooldownAfter {
		s.coolUntil = b.now() + b.cooldown
		s.consecErr = 0
	}
}

// inflight reports the current inflight count of slot i (for gauges).
func (b *balancer) inflightOf(i int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.slots[i].inflight
}
