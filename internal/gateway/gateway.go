// Package gateway implements a front-end tier that multiplexes many
// clients over a small pool of DHT backends. It is the deployability
// layer the ROADMAP's "millions of clients" north star calls for: the
// ring keeps its replica fan-out and KTS traffic, while clients talk to
// a stateless gateway that
//
//   - balances operations over the backend pool (round-robin rotation +
//     least-inflight among healthy backends, with error cooldown),
//   - single-flights concurrent retrieves for the same (key, consistency
//     class), so N concurrent hot-key readers cost one backend op,
//   - answers Bounded and Eventual reads from a gateway-local last-ts
//     cache — the KTS peer-cache semantics from docs/CONSISTENCY.md
//     applied one tier up — without touching KTS at all, and
//   - fans batch operations out across the pool.
//
// Session floors are respected everywhere: a coalesced waiter only
// accepts the shared result when its timestamp is at or above the
// waiter's floor, so read-your-writes survives the extra tier even when
// a write races an in-progress flight.
//
// The package is environment-portable: under the simulation kernel all
// waiting is env.Sleep polling (the only legal blocking shape there),
// which also works unchanged over the real clock.
package gateway

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/network"
	"repro/internal/obs"
)

// defaultPoll is how often a coalesced waiter re-checks its flight.
const defaultPoll = time.Millisecond

// Backend is one pooled DHT client: anything that can write, read with
// a currency policy, and ask KTS for a last timestamp. The public
// dcdht.Gateway adapts dcdht.Client values; tests and the experiment
// harness adapt simulated peers directly.
type Backend interface {
	Insert(ctx context.Context, k core.Key, data []byte) (dht.OpResult, error)
	Retrieve(ctx context.Context, k core.Key, pol dht.ReadPolicy) (dht.OpResult, error)
	LastTS(ctx context.Context, k core.Key) (core.Timestamp, error)
}

// Config parameterizes a Gateway.
type Config struct {
	// Env supplies time, sleeping and goroutines. Required: the
	// simulation kernel and the real clock both satisfy it.
	Env network.Env
	// Obs receives the dcdht_gw_* metric families. Nil disables
	// metrics without disabling the gateway.
	Obs *obs.Registry
	// Poll is the waiter re-check interval for coalesced flights and
	// batch joins. Zero selects the default (1ms).
	Poll time.Duration
	// CooldownAfter benches a backend after this many consecutive
	// errors (0 selects the default, 3).
	CooldownAfter int
	// Cooldown is how long a benched backend sits out (0 selects the
	// default, 2s).
	Cooldown time.Duration
}

// Stats are the gateway's cumulative raw counters, readable without an
// obs registry (the experiment figure uses them).
type Stats struct {
	// Flights counts retrieve flights that actually hit a backend.
	Flights uint64 `json:"flights"`
	// Coalesced counts retrieves served by joining another flight.
	Coalesced uint64 `json:"coalesced"`
	// FlightRetries counts waiters that rejected the shared result
	// (error, or timestamp below their session floor) and re-read.
	FlightRetries uint64 `json:"flight_retries"`
	// CacheHits counts last-ts cache consults that found a usable entry.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts consults that found nothing usable.
	CacheMisses uint64 `json:"cache_misses"`
	// CacheServedGets counts bounded gets answered via the cache floor.
	CacheServedGets uint64 `json:"cache_served_gets"`
	// CacheServedLastTS counts last_ts calls answered purely from the cache.
	CacheServedLastTS uint64 `json:"cache_served_last_ts"`
	// CacheFallbacks counts cache-path reads that fell back to the
	// caller's full policy after the cheap read failed.
	CacheFallbacks uint64 `json:"cache_fallbacks"`
	// BackendOps counts operations actually sent to backends.
	BackendOps uint64 `json:"backend_ops"`
	// BackendErrors counts backend operations that returned an error.
	BackendErrors uint64 `json:"backend_errors"`
}

// flightKey identifies one coalescable read: the key plus a consistency
// class. Reads with different acceptance strengths never share a
// flight.
type flightKey struct {
	key   core.Key
	class string
}

// classOf buckets a read policy into a flight class. Session-floor
// reads share one class even when floors differ — each waiter
// revalidates the shared result against its own floor before accepting.
func classOf(pol dht.ReadPolicy) string {
	if pol.FloorFirst && !pol.Floor.IsZero() {
		return "floor"
	}
	switch pol.Level {
	case dht.LevelBounded:
		return "bounded/" + pol.Bound.String()
	case dht.LevelEventual:
		return "eventual"
	default:
		return "current"
	}
}

// flight is one in-progress backend retrieve that concurrent readers of
// the same flightKey wait on. Fields are guarded by the gateway mutex.
type flight struct {
	done bool
	res  dht.OpResult
	err  error
}

// beMetrics are the per-backend metric instruments, resolved once at
// construction so the hot path never formats labels.
type beMetrics struct {
	ops      *obs.Counter
	errs     *obs.Counter
	inflight *obs.Gauge
}

// gwMetrics are the gateway's dcdht_gw_* families.
type gwMetrics struct {
	ops           *obs.CounterVec
	flights       *obs.Counter
	coalesced     *obs.Counter
	flightRetries *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheAge      *obs.Histogram
	cacheServed   *obs.CounterVec
	cacheFallback *obs.Counter
}

func newGWMetrics(r *obs.Registry) gwMetrics {
	return gwMetrics{
		ops: r.CounterVec("dcdht_gw_ops_total",
			"Client operations accepted by the gateway.", "op"),
		flights: r.Counter("dcdht_gw_flights_total",
			"Retrieve flights that actually hit a backend."),
		coalesced: r.Counter("dcdht_gw_coalesced_total",
			"Retrieves served by joining another reader's flight."),
		flightRetries: r.Counter("dcdht_gw_flight_retries_total",
			"Coalesced waiters that rejected the shared result (floor or error) and re-read."),
		cacheHits: r.Counter("dcdht_gw_cache_hits_total",
			"Gateway last-ts cache consults that found a usable entry."),
		cacheMisses: r.Counter("dcdht_gw_cache_misses_total",
			"Gateway last-ts cache consults that found nothing usable."),
		cacheAge: r.DurationHistogram("dcdht_gw_cache_age_seconds",
			"Age of gateway last-ts cache entries at consult time."),
		cacheServed: r.CounterVec("dcdht_gw_cache_served_total",
			"Operations answered from the gateway cache without touching KTS.", "op"),
		cacheFallback: r.Counter("dcdht_gw_cache_fallback_total",
			"Cache-floor reads that failed and fell back to the full bounded policy."),
	}
}

// Gateway is the front-end tier. It is safe for concurrent use by any
// number of clients.
type Gateway struct {
	env      network.Env
	backends []Backend
	bal      *balancer
	cache    *tsCache
	poll     time.Duration
	metrics  gwMetrics
	perBE    []beMetrics

	mu      sync.Mutex
	flights map[flightKey]*flight
	stats   Stats
}

// New builds a Gateway over the given backend pool.
func New(backends []Backend, cfg Config) (*Gateway, error) {
	if len(backends) == 0 {
		return nil, errors.New("gateway: no backends")
	}
	if cfg.Env == nil {
		return nil, errors.New("gateway: Config.Env is required")
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = defaultPoll
	}
	g := &Gateway{
		env:      cfg.Env,
		backends: backends,
		bal:      newBalancer(len(backends), cfg.Env.Now, cfg.CooldownAfter, cfg.Cooldown),
		cache:    newTSCache(cfg.Env.Now),
		poll:     poll,
		metrics:  newGWMetrics(cfg.Obs),
		flights:  make(map[flightKey]*flight),
	}
	g.perBE = make([]beMetrics, len(backends))
	beOps := cfg.Obs.CounterVec("dcdht_gw_backend_ops_total",
		"Operations forwarded to each backend.", "backend")
	beErrs := cfg.Obs.CounterVec("dcdht_gw_backend_errors_total",
		"Forwarded operations that returned an error, per backend.", "backend")
	beInfl := cfg.Obs.GaugeVec("dcdht_gw_backend_inflight",
		"Operations currently inflight on each backend.", "backend")
	for i := range backends {
		l := strconv.Itoa(i)
		g.perBE[i] = beMetrics{
			ops:      beOps.With(l),
			errs:     beErrs.With(l),
			inflight: beInfl.With(l),
		}
	}
	return g, nil
}

// Backends reports the pool size.
func (g *Gateway) Backends() int { return len(g.backends) }

// CacheLen reports the number of keys in the gateway last-ts cache.
func (g *Gateway) CacheLen() int { return g.cache.len() }

// Stats returns a snapshot of the gateway's cumulative counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

func (g *Gateway) bump(f func(*Stats)) {
	g.mu.Lock()
	f(&g.stats)
	g.mu.Unlock()
}

// Insert writes k through one pooled backend and feeds the granted
// timestamp to the gateway cache (a Put's timestamp IS last_ts(k) at
// that moment, exactly as the KTS peer cache reasons).
func (g *Gateway) Insert(ctx context.Context, k core.Key, data []byte) (dht.OpResult, error) {
	g.metrics.ops.With("put").Inc()
	res, err := g.backendDo(ctx, func(b Backend) (dht.OpResult, error) {
		return b.Insert(ctx, k, data)
	})
	if err == nil {
		g.cache.note(k, res.TS)
	}
	return res, err
}

// Retrieve reads k at the given policy. Bounded reads first consult the
// gateway cache: a fresh-enough entry turns the read into a floor-first
// backend read (zero KTS messages) whose result is re-labelled
// WithinBound with the cache floor and age — the same currency the KTS
// peer cache grants, one tier earlier. All reads are coalesced per
// (key, class).
func (g *Gateway) Retrieve(ctx context.Context, k core.Key, pol dht.ReadPolicy) (dht.OpResult, error) {
	g.metrics.ops.With("get").Inc()
	eff := pol
	rewrite := false
	var cfloor core.Timestamp
	var age time.Duration
	if pol.Level == dht.LevelBounded && !pol.FloorFirst {
		ts, a, ok := g.cache.cached(k)
		if ok && a <= pol.Bound {
			g.metrics.cacheHits.Inc()
			g.metrics.cacheAge.Observe(a)
			g.bump(func(s *Stats) { s.CacheHits++ })
			cfloor, age = ts.Max(pol.Floor), a
			eff = dht.ReadPolicy{Floor: cfloor, FloorFirst: true}
			rewrite = true
		} else {
			g.metrics.cacheMisses.Inc()
			g.bump(func(s *Stats) { s.CacheMisses++ })
		}
	}
	res, err := g.coalesced(ctx, k, eff)
	if rewrite {
		if err != nil {
			// The cheap path failed (e.g. no replica at the floor was
			// reachable): pay full price rather than surface an error
			// the original policy could have absorbed.
			g.metrics.cacheFallback.Inc()
			g.bump(func(s *Stats) { s.CacheFallbacks++ })
			res, err = g.coalesced(ctx, k, pol)
		} else {
			res.Currency = dht.CurrencyWithinBound
			res.Floor, res.FloorAge = cfloor, age
			g.metrics.cacheServed.With("get").Inc()
			g.bump(func(s *Stats) { s.CacheServedGets++ })
		}
	}
	if err == nil && res.Currency == dht.CurrencyProven {
		// A proven result's floor is the authoritative last_ts target:
		// safe to cache. Weaker verdicts are not authoritative and
		// must not feed the cache.
		g.cache.note(k, res.Floor)
	}
	return res, err
}

// LastTS answers last_ts(k) under the given read policy. Bounded and
// Eventual consults are served purely from the gateway cache when a
// usable entry exists (zero backend and KTS messages); everything else
// forwards to a backend, and the authoritative answer feeds the cache.
func (g *Gateway) LastTS(ctx context.Context, k core.Key, pol dht.ReadPolicy) (core.Timestamp, error) {
	g.metrics.ops.With("last_ts").Inc()
	if !pol.FloorFirst {
		switch pol.Level {
		case dht.LevelEventual:
			if ts, a, ok := g.cache.cached(k); ok {
				g.serveLastTSFromCache(a)
				return ts.Max(pol.Floor), nil
			}
		case dht.LevelBounded:
			if ts, a, ok := g.cache.cached(k); ok && a <= pol.Bound {
				g.serveLastTSFromCache(a)
				return ts.Max(pol.Floor), nil
			}
		}
	}
	var ts core.Timestamp
	_, err := g.backendDo(ctx, func(b Backend) (dht.OpResult, error) {
		var berr error
		ts, berr = b.LastTS(ctx, k)
		return dht.OpResult{}, berr
	})
	if err == nil {
		g.cache.note(k, ts)
	}
	return ts, err
}

func (g *Gateway) serveLastTSFromCache(age time.Duration) {
	g.metrics.cacheHits.Inc()
	g.metrics.cacheAge.Observe(age)
	g.metrics.cacheServed.With("last_ts").Inc()
	g.bump(func(s *Stats) { s.CacheHits++; s.CacheServedLastTS++ })
}

// Item is one element of a batch insert.
type Item struct {
	Key  core.Key
	Data []byte
}

// ItemResult pairs a batch element with its outcome, in input order.
type ItemResult struct {
	Res dht.OpResult
	Err error
}

// InsertMulti writes a batch, each element through its own pooled
// backend picked by the balancer, concurrently.
func (g *Gateway) InsertMulti(ctx context.Context, items []Item) []ItemResult {
	g.metrics.ops.With("put_multi").Inc()
	out := make([]ItemResult, len(items))
	g.fanOut(len(items), out, func(i int) (dht.OpResult, error) {
		return g.Insert(ctx, items[i].Key, items[i].Data)
	})
	return out
}

// RetrieveMulti reads a batch of keys at one policy, concurrently; each
// element goes through the normal coalescing path, so duplicate hot
// keys inside one batch (or across batches) still cost one backend op.
func (g *Gateway) RetrieveMulti(ctx context.Context, keys []core.Key, pol dht.ReadPolicy) []ItemResult {
	g.metrics.ops.With("get_multi").Inc()
	out := make([]ItemResult, len(keys))
	g.fanOut(len(keys), out, func(i int) (dht.OpResult, error) {
		return g.Retrieve(ctx, keys[i], pol)
	})
	return out
}

// fanOut runs n element ops concurrently through the environment and
// joins them. If the join itself fails (environment shut down), the
// unfinished elements report that error.
func (g *Gateway) fanOut(n int, out []ItemResult, op func(i int) (dht.OpResult, error)) {
	done := make([]bool, n)
	jerr := network.GoJoin(g.env, n, g.poll, func(i int) {
		res, err := op(i)
		out[i] = ItemResult{Res: res, Err: err}
		done[i] = true
	})
	if jerr != nil {
		for i := range out {
			if !done[i] {
				out[i] = ItemResult{Err: jerr}
			}
		}
	}
}

// coalesced funnels a retrieve through the per-(key, class) flight map:
// the first reader becomes the leader and pays for the backend op,
// concurrent readers wait on it and revalidate the shared result.
func (g *Gateway) coalesced(ctx context.Context, k core.Key, pol dht.ReadPolicy) (dht.OpResult, error) {
	fk := flightKey{key: k, class: classOf(pol)}
	g.mu.Lock()
	if f, ok := g.flights[fk]; ok {
		g.mu.Unlock()
		return g.awaitFlight(ctx, f, k, pol)
	}
	f := &flight{}
	g.flights[fk] = f
	g.stats.Flights++
	g.mu.Unlock()
	g.metrics.flights.Inc()

	res, err := g.retrieveBackend(ctx, k, pol)
	g.mu.Lock()
	f.res, f.err, f.done = res, err, true
	delete(g.flights, fk)
	g.mu.Unlock()
	return res, err
}

// awaitFlight polls a leader's flight until it completes. The shared
// result is accepted only when it succeeded AND carries a timestamp at
// or above this waiter's floor; otherwise the waiter pays for its own
// read — this is what makes a write racing the flight safe: the
// writer's session floor rose past the flight's result, so the floor
// check forces a fresh read instead of serving the pre-write value.
func (g *Gateway) awaitFlight(ctx context.Context, f *flight, k core.Key, pol dht.ReadPolicy) (dht.OpResult, error) {
	for {
		g.mu.Lock()
		done, res, err := f.done, f.res, f.err
		g.mu.Unlock()
		if done {
			if err == nil && !res.TS.Less(pol.Floor) {
				g.metrics.coalesced.Inc()
				g.bump(func(s *Stats) { s.Coalesced++ })
				return res, nil
			}
			g.metrics.flightRetries.Inc()
			g.bump(func(s *Stats) { s.FlightRetries++ })
			return g.retrieveBackend(ctx, k, pol)
		}
		if serr := network.SleepCtx(ctx, g.env, g.poll); serr != nil {
			return dht.OpResult{}, serr
		}
	}
}

// retrieveBackend sends one retrieve to a balancer-picked backend.
func (g *Gateway) retrieveBackend(ctx context.Context, k core.Key, pol dht.ReadPolicy) (dht.OpResult, error) {
	return g.backendDo(ctx, func(b Backend) (dht.OpResult, error) {
		return b.Retrieve(ctx, k, pol)
	})
}

// backendDo acquires a backend slot, runs fn against it, and folds the
// outcome into the balancer's health view and the per-backend metrics.
func (g *Gateway) backendDo(ctx context.Context, fn func(Backend) (dht.OpResult, error)) (dht.OpResult, error) {
	if err := network.CtxError(ctx); err != nil {
		return dht.OpResult{}, err
	}
	i := g.bal.acquire()
	g.perBE[i].inflight.Add(1)
	res, err := fn(g.backends[i])
	g.perBE[i].inflight.Add(-1)
	g.perBE[i].ops.Inc()
	herr := healthErr(err)
	if herr != nil {
		g.perBE[i].errs.Inc()
	}
	g.bal.release(i, herr)
	g.bump(func(s *Stats) {
		s.BackendOps++
		if herr != nil {
			s.BackendErrors++
		}
	})
	return res, err
}

// healthErr filters application outcomes out of backend-health
// accounting: a key with no provably-current replica or no replica at
// all answers the same on every backend, so it must neither bench the
// backend nor count as a backend error.
func healthErr(err error) error {
	if errors.Is(err, core.ErrNoCurrentReplica) || errors.Is(err, core.ErrNotFound) {
		return nil
	}
	return err
}
