package simnet

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := New(1)
	var woke time.Duration
	k.Go(func() {
		if err := k.Sleep(3 * time.Second); err != nil {
			t.Errorf("sleep: %v", err)
		}
		woke = k.Now()
	})
	start := time.Now()
	k.RunUntilIdle()
	if woke != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", woke)
	}
	if real := time.Since(start); real > time.Second {
		t.Fatalf("3s of virtual time took %v of real time", real)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", k.LiveProcs())
	}
}

func TestEventOrdering(t *testing.T) {
	k := New(1)
	var order []string
	for _, spec := range []struct {
		name  string
		delay time.Duration
	}{
		{"c", 30 * time.Millisecond},
		{"a", 10 * time.Millisecond},
		{"b", 20 * time.Millisecond},
		{"a2", 10 * time.Millisecond}, // same time as a: schedule order breaks the tie
	} {
		spec := spec
		k.Go(func() {
			k.Sleep(spec.delay)
			order = append(order, spec.name)
		})
	}
	k.RunUntilIdle()
	want := "a,a2,b,c"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	k := New(1)
	var fired []time.Duration
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Second
		k.Go(func() {
			k.Sleep(d)
			fired = append(fired, k.Now())
		})
	}
	k.Run(2500 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if k.Now() != 2500*time.Millisecond {
		t.Fatalf("now = %v, want horizon", k.Now())
	}
	k.RunUntilIdle()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestSerializedExecution(t *testing.T) {
	// At most one process may execute user code at any instant.
	k := New(1)
	var inside int32
	for i := 0; i < 50; i++ {
		k.Go(func() {
			for j := 0; j < 20; j++ {
				if n := atomic.AddInt32(&inside, 1); n != 1 {
					t.Errorf("%d processes running concurrently", n)
				}
				// Busy section with a reschedule in the middle.
				atomic.AddInt32(&inside, -1)
				k.Sleep(time.Millisecond)
			}
		})
	}
	k.RunUntilIdle()
}

func TestFutureResolveBeforeAwait(t *testing.T) {
	k := New(1)
	f := k.NewFuture()
	var got any
	k.Go(func() {
		f.Resolve("early")
		k.Sleep(time.Second)
	})
	k.Go(func() {
		k.Sleep(2 * time.Second) // resolve happens long before
		v, err := f.Await(0)
		if err != nil {
			t.Errorf("await: %v", err)
		}
		got = v
	})
	k.RunUntilIdle()
	if got != "early" {
		t.Fatalf("got %v", got)
	}
}

func TestFutureAwaitBeforeResolve(t *testing.T) {
	k := New(1)
	f := k.NewFuture()
	var got any
	var when time.Duration
	k.Go(func() {
		v, err := f.Await(0)
		if err != nil {
			t.Errorf("await: %v", err)
		}
		got, when = v, k.Now()
	})
	k.Go(func() {
		k.Sleep(5 * time.Second)
		f.Resolve(42)
	})
	k.RunUntilIdle()
	if got != 42 || when != 5*time.Second {
		t.Fatalf("got %v at %v", got, when)
	}
}

func TestFutureTimeout(t *testing.T) {
	k := New(1)
	f := k.NewFuture()
	var err error
	var when time.Duration
	k.Go(func() {
		_, err = f.Await(time.Second)
		when = k.Now()
	})
	k.RunUntilIdle()
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if when != time.Second {
		t.Fatalf("timed out at %v", when)
	}
}

func TestFutureResolveWinsOverLaterTimeout(t *testing.T) {
	k := New(1)
	f := k.NewFuture()
	var got any
	var err error
	k.Go(func() {
		got, err = f.Await(10 * time.Second)
	})
	k.Go(func() {
		k.Sleep(time.Second)
		f.Resolve("fast")
	})
	k.RunUntilIdle()
	if err != nil || got != "fast" {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestFutureDoubleResolveIgnored(t *testing.T) {
	k := New(1)
	f := k.NewFuture()
	var got any
	k.Go(func() {
		f.Resolve("first")
		f.Resolve("second")
	})
	k.Go(func() {
		k.Sleep(time.Second)
		got, _ = f.Await(0)
	})
	k.RunUntilIdle()
	if got != "first" {
		t.Fatalf("got %v, want first", got)
	}
}

func TestFutureResolveAfterTimeoutIsNoop(t *testing.T) {
	k := New(1)
	f := k.NewFuture()
	var err error
	k.Go(func() {
		_, err = f.Await(time.Second)
	})
	k.Go(func() {
		k.Sleep(5 * time.Second)
		f.Resolve("too late")
	})
	k.RunUntilIdle()
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestTimerFiresAndCancels(t *testing.T) {
	k := New(1)
	var fired, canceledFired bool
	k.After(time.Second, func() { fired = true })
	tm := k.After(2*time.Second, func() { canceledFired = true })
	k.Go(func() {
		k.Sleep(1500 * time.Millisecond)
		if !tm.Cancel() {
			t.Error("cancel should succeed before firing")
		}
	})
	k.RunUntilIdle()
	if !fired {
		t.Fatal("timer did not fire")
	}
	if canceledFired {
		t.Fatal("canceled timer fired")
	}
	// Cancel after fire reports false.
	tm2 := k.After(time.Millisecond, func() {})
	k.RunUntilIdle()
	if tm2.Cancel() {
		t.Fatal("cancel after firing must report false")
	}
}

// An RPC-shaped ping-pong: the client sends a request by scheduling a
// delivery event; the server process resolves the reply future.
func TestRPCPingPong(t *testing.T) {
	k := New(1)
	const latency = 100 * time.Millisecond
	var rtt time.Duration
	k.Go(func() {
		start := k.Now()
		reply := k.NewFuture()
		k.After(latency, func() { // request arrives at server
			k.Sleep(10 * time.Millisecond) // server work
			k.After(latency, func() {      // reply travels back
				reply.Resolve("pong")
			})
		})
		v, err := reply.Await(0)
		if err != nil || v != "pong" {
			t.Errorf("reply = %v, %v", v, err)
		}
		rtt = k.Now() - start
	})
	k.RunUntilIdle()
	if rtt != 210*time.Millisecond {
		t.Fatalf("rtt = %v, want 210ms", rtt)
	}
}

func TestStopReleasesBlockedProcs(t *testing.T) {
	k := New(1)
	sleepErrCh := make(chan error, 1)
	awaitErrCh := make(chan error, 1)
	k.Go(func() {
		sleepErrCh <- k.Sleep(time.Hour)
	})
	k.Go(func() {
		_, err := k.NewFuture().Await(0)
		awaitErrCh <- err
	})
	k.Go(func() {
		k.Sleep(time.Second)
		k.Stop()
	})
	k.Run(2 * time.Hour)
	if err := <-sleepErrCh; !errors.Is(err, core.ErrStopped) {
		t.Fatalf("sleep err = %v", err)
	}
	if err := <-awaitErrCh; !errors.Is(err, core.ErrStopped) {
		t.Fatalf("await err = %v", err)
	}
	if !k.Stopped() {
		t.Fatal("kernel should report stopped")
	}
}

func TestNewRandStreamsIndependentAndSeeded(t *testing.T) {
	a1 := New(7).NewRand("x")
	a2 := New(7).NewRand("x")
	b := New(7).NewRand("y")
	c := New(8).NewRand("x")
	sameAsA1 := 0
	diffLabel, diffSeed := 0, 0
	for i := 0; i < 100; i++ {
		v1 := a1.Uint64()
		if v1 == a2.Uint64() {
			sameAsA1++
		}
		if v1 == b.Uint64() {
			diffLabel++
		}
		if v1 == c.Uint64() {
			diffSeed++
		}
	}
	if sameAsA1 != 100 {
		t.Fatal("same seed+label must give identical streams")
	}
	if diffLabel > 2 || diffSeed > 2 {
		t.Fatal("different label/seed must give different streams")
	}
}

// Determinism: an entire simulation with many interleaved processes must
// produce an identical trace when repeated with the same seed.
func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		k := New(99)
		rng := k.NewRand("trace")
		trace := ""
		for p := 0; p < 10; p++ {
			p := p
			k.Go(func() {
				for i := 0; i < 20; i++ {
					k.Sleep(time.Duration(rng.Intn(1000)) * time.Millisecond)
					trace += fmt.Sprintf("%d@%v;", p, k.Now())
				}
			})
		}
		k.RunUntilIdle()
		return trace
	}
	t1 := run()
	t2 := run()
	if t1 != t2 {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", t1, t2)
	}
	if t1 == "" {
		t.Fatal("empty trace")
	}
}

func TestGoAfterStopIsNoop(t *testing.T) {
	k := New(1)
	k.Stop()
	k.Go(func() { t.Error("process ran after stop") })
	k.RunUntilIdle()
	tm := k.After(time.Second, func() { t.Error("timer ran after stop") })
	if tm.Cancel() {
		t.Fatal("timer created after stop should already be inert")
	}
}

func TestEventsCounter(t *testing.T) {
	k := New(1)
	for i := 0; i < 5; i++ {
		k.Go(func() { k.Sleep(time.Millisecond) })
	}
	k.RunUntilIdle()
	// 5 spawn events + 5 wake events.
	if got := k.Events(); got != 10 {
		t.Fatalf("events = %d, want 10", got)
	}
}
