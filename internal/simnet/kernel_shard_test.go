package simnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The event queue is sharded by sequence number (shard = seq & 7), so
// correctness properties that used to be trivially true of one heap —
// total (at,seq) order, cancellation, removal — now cross shard
// boundaries. These tests pin them down at the seams.

// nopArg is a package-level callback so scheduling it allocates no
// closure — the alloc tests below depend on that.
func nopArg(any) {}

// TestSimultaneousDeadlinesFireInScheduleOrder schedules many callbacks
// at the identical virtual instant. Their sequence numbers spread
// round-robin over all shards, and the merge layer must still dispatch
// them in exact schedule order.
func TestSimultaneousDeadlinesFireInScheduleOrder(t *testing.T) {
	k := New(1)
	defer k.Stop()
	const n = 64 // 8 per shard
	var got []int
	for i := 0; i < n; i++ {
		i := i
		k.AfterCall(time.Millisecond, func(x any) { got = append(got, x.(int)) }, i)
	}
	k.RunUntilIdle()
	if len(got) != n {
		t.Fatalf("fired %d of %d callbacks", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("fire order diverged at %d: got %v", i, got[:i+1])
		}
	}
}

// TestCancelAcrossShards arms one timer per shard slot and cancels
// every other one; only the survivors may fire, still in deadline
// order, and cancellation must work regardless of which shard heap
// holds the timer's event.
func TestCancelAcrossShards(t *testing.T) {
	k := New(2)
	defer k.Stop()
	const n = 48
	var mu sync.Mutex
	var fired []int
	timers := make([]*Timer, n)
	for i := 0; i < n; i++ {
		i := i
		timers[i] = k.After(time.Duration(i+1)*time.Millisecond, func() {
			mu.Lock()
			fired = append(fired, i)
			mu.Unlock()
		})
	}
	for i := 0; i < n; i += 2 {
		if !timers[i].Cancel() {
			t.Fatalf("timer %d: Cancel returned false before firing", i)
		}
	}
	k.RunUntilIdle()
	mu.Lock()
	defer mu.Unlock()
	if want := n / 2; len(fired) != want {
		t.Fatalf("%d timers fired, want %d", len(fired), want)
	}
	for j, v := range fired {
		if want := 2*j + 1; v != want {
			t.Fatalf("fire order diverged at %d: got %d, want %d", j, v, want)
		}
	}
	for i := 1; i < n; i += 2 {
		if timers[i].Cancel() {
			t.Fatalf("timer %d: Cancel returned true after firing", i)
		}
	}
}

// TestCancelLastAndMiddleOfShardHeap removes events from the middle and
// tail of a shard's heap — the swap-with-last paths in remove() — and
// checks the survivors keep their order.
func TestCancelLastAndMiddleOfShardHeap(t *testing.T) {
	k := New(3)
	defer k.Stop()
	// All on one shard: every 8th push lands on shard seq&7 == same slot,
	// so schedule 8 groups and cancel within each.
	const n = 64
	var got []int
	timers := make([]*Timer, n)
	for i := 0; i < n; i++ {
		i := i
		timers[i] = k.After(time.Duration(n-i)*time.Millisecond, func() {
			got = append(got, i)
		})
	}
	// Cancel a middle band and the latest deadlines (heap tails).
	for i := 20; i < 30; i++ {
		timers[i].Cancel()
	}
	for i := 0; i < 4; i++ {
		timers[i].Cancel() // longest deadlines, deepest heap entries
	}
	k.RunUntilIdle()
	want := 0
	for i := n - 1; i >= 0; i-- { // deadlines descend with i
		if i >= 20 && i < 30 || i < 4 {
			continue
		}
		want++
	}
	if len(got) != want {
		t.Fatalf("%d timers fired, want %d", len(got), want)
	}
	// Deadlines are (n-i)ms, so survivors fire in descending i.
	for j := 1; j < len(got); j++ {
		if got[j] > got[j-1] {
			t.Fatalf("deadline order violated: %v", got)
		}
	}
}

// TestConcurrentScheduleCancelRace hammers the shared queue from many
// OS threads while the kernel drains it — the -race regression test
// for the striped push/remove/dispatch paths.
func TestConcurrentScheduleCancelRace(t *testing.T) {
	k := New(4)
	defer k.Stop()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				tm := k.After(time.Duration(1+(g+i)%13)*time.Millisecond, func() { fired.Add(1) })
				k.AfterCall(time.Duration(1+i%7)*time.Millisecond, nopArg, nil)
				if i%3 == 0 {
					tm.Cancel()
				}
			}
		}(g)
	}
	producersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(producersDone)
	}()
	// Drain concurrently with the producers, then finish the tail.
	draining := true
	for draining {
		select {
		case <-producersDone:
			draining = false
		default:
			k.Run(k.Now() + time.Millisecond)
		}
	}
	k.RunUntilIdle()
	if fired.Load() == 0 {
		t.Fatal("no timers fired under the hammer")
	}
	if k.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d events left", k.QueueLen())
	}
}

// TestQueueLenTracksAcrossShards checks the merged-queue accounting
// that the sharded layout has to maintain explicitly.
func TestQueueLenTracksAcrossShards(t *testing.T) {
	k := New(5)
	defer k.Stop()
	timers := make([]*Timer, 20)
	for i := range timers {
		timers[i] = k.After(time.Duration(i+1)*time.Second, func() {})
	}
	if got := k.QueueLen(); got != 20 {
		t.Fatalf("QueueLen = %d, want 20", got)
	}
	for i := 0; i < 10; i++ {
		timers[i].Cancel()
	}
	if got := k.QueueLen(); got != 10 {
		t.Fatalf("QueueLen after cancels = %d, want 10", got)
	}
	k.RunUntilIdle()
	if got := k.QueueLen(); got != 0 {
		t.Fatalf("QueueLen after drain = %d, want 0", got)
	}
}

// TestAfterCallSteadyStateAllocations pins the schedule/fire hot path:
// once the free list is warm, an AfterCall round trip through the
// sharded queue must not allocate at all.
func TestAfterCallSteadyStateAllocations(t *testing.T) {
	k := New(6)
	defer k.Stop()
	// Warm the event free list.
	for i := 0; i < 100; i++ {
		k.AfterCall(time.Millisecond, nopArg, nil)
	}
	k.RunUntilIdle()
	allocs := testing.AllocsPerRun(200, func() {
		k.AfterCall(time.Millisecond, nopArg, nil)
		k.RunUntilIdle()
	})
	if allocs > 0 {
		t.Errorf("AfterCall schedule/fire path allocates %.2f objects/op, want 0", allocs)
	}
}

// TestTimerFireAllocations pins the After path: one Timer object plus
// the fired goroutine — the budget is small and must not creep.
func TestTimerFireAllocations(t *testing.T) {
	k := New(7)
	defer k.Stop()
	fn := func() {}
	for i := 0; i < 100; i++ {
		k.After(time.Millisecond, fn)
	}
	k.RunUntilIdle()
	allocs := testing.AllocsPerRun(200, func() {
		k.After(time.Millisecond, fn)
		k.RunUntilIdle()
	})
	if allocs > 6 {
		t.Errorf("After schedule/fire path allocates %.2f objects/op, want <= 6", allocs)
	}
}
