// Package simnet is a deterministic discrete-event simulation kernel in
// the style of SimJava, which the paper used for its scale-up study
// (§5.1). Simulated activities ("processes") are ordinary goroutines that
// block on virtual time — Sleep, Future.Await, RPC round trips — while
// the kernel advances a virtual clock through a totally ordered event
// queue.
//
// Determinism. The kernel runs at most one process at any real-time
// instant: an event is dispatched only when every process is blocked, and
// each event wakes at most one process. Together with seeded RNG streams
// this makes whole simulations bit-reproducible, which the tests assert.
// It also means protocol code needs no locking when run under simnet,
// although it keeps its locks so the same code runs on real transports.
package simnet

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
)

// event is one entry in the kernel's queue. Events are ordered by
// (at, seq) so simultaneous events run in schedule order.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// index is maintained by container/heap.
	index int
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is the simulation engine. Create one with New, spawn processes
// with Go, then drive it with Run / RunUntilIdle.
type Kernel struct {
	mu       sync.Mutex
	cond     *sync.Cond
	now      time.Duration
	seq      uint64
	queue    eventHeap
	runnable int // processes currently executing user code
	procs    int // live processes (running or blocked)
	stopped  bool
	stopCh   chan struct{}
	seed     int64
	events   uint64 // dispatched events, for diagnostics
}

// New creates a kernel whose RNG streams derive from seed.
func New(seed int64) *Kernel {
	k := &Kernel{stopCh: make(chan struct{}), seed: seed}
	k.cond = sync.NewCond(&k.mu)
	return k
}

// Now returns the current virtual time. Safe from any goroutine.
func (k *Kernel) Now() time.Duration {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.now
}

// Events returns the number of events dispatched so far.
func (k *Kernel) Events() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.events
}

// LiveProcs returns the number of processes that exist (running or
// blocked). Useful for detecting leaks in tests.
func (k *Kernel) LiveProcs() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.procs
}

// NewRand derives an independent, deterministic RNG stream for a named
// component (e.g. "churn", "latency", "node:17").
func (k *Kernel) NewRand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", k.seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// push enqueues an event; caller must hold k.mu.
func (k *Kernel) push(at time.Duration, fn func()) *event {
	if at < k.now {
		at = k.now
	}
	ev := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return ev
}

// remove deletes a queued event; caller must hold k.mu. Removing an
// already-popped event is a no-op.
func (k *Kernel) remove(ev *event) {
	if ev.index >= 0 && ev.index < len(k.queue) && k.queue[ev.index] == ev {
		heap.Remove(&k.queue, ev.index)
	}
}

// Go spawns a process at the current virtual time. fn runs on its own
// goroutine but is serialized with every other process by the kernel. May
// be called from inside or outside the simulation.
func (k *Kernel) Go(fn func()) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stopped {
		return
	}
	k.procs++
	k.push(k.now, func() {
		k.mu.Lock()
		k.runnable++
		k.mu.Unlock()
		go func() {
			defer k.exitProc()
			fn()
		}()
	})
}

// exitProc retires a finished process.
func (k *Kernel) exitProc() {
	k.mu.Lock()
	k.runnable--
	k.procs--
	k.cond.Signal()
	k.mu.Unlock()
}

// Sleep blocks the calling process for d of virtual time. Must be called
// from a process goroutine. Returns core.ErrStopped if the kernel is shut
// down while sleeping.
func (k *Kernel) Sleep(d time.Duration) error {
	ch := make(chan struct{}, 1)
	k.mu.Lock()
	if k.stopped {
		k.mu.Unlock()
		return core.ErrStopped
	}
	k.push(k.now+d, func() {
		k.mu.Lock()
		k.runnable++
		k.mu.Unlock()
		ch <- struct{}{}
	})
	k.block()
	k.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-k.stopCh:
		return core.ErrStopped
	}
}

// block marks the calling process as no longer runnable; caller must hold
// k.mu.
func (k *Kernel) block() {
	k.runnable--
	k.cond.Signal()
}

// After schedules fn to run as a new process after delay d. The returned
// Timer can cancel it before it fires.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	t := &Timer{k: k}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stopped {
		t.fired = true
		return t
	}
	t.ev = k.push(k.now+d, func() {
		k.mu.Lock()
		if t.canceled {
			k.mu.Unlock()
			return
		}
		t.fired = true
		k.procs++
		k.runnable++
		k.mu.Unlock()
		go func() {
			defer k.exitProc()
			fn()
		}()
	})
	return t
}

// Timer is a cancellable delayed process handle.
type Timer struct {
	k        *Kernel
	ev       *event
	canceled bool
	fired    bool
}

// Cancel prevents the timer from firing. Returns true if it was stopped
// before firing.
func (t *Timer) Cancel() bool {
	t.k.mu.Lock()
	defer t.k.mu.Unlock()
	if t.fired || t.canceled {
		return false
	}
	t.canceled = true
	t.k.remove(t.ev)
	return true
}

// Run advances virtual time, dispatching events until the queue is empty
// or the next event lies beyond `until`. On return every process is
// blocked (or exited) and now == until exactly, so repeated Run calls
// step the clock through fixed horizons. It reports the number of events
// dispatched by this call.
func (k *Kernel) Run(until time.Duration) int {
	return k.run(until, true)
}

// RunUntilIdle dispatches events until none remain, leaving the clock at
// the time of the last event. It reports the number of events dispatched.
func (k *Kernel) RunUntilIdle() int {
	return k.run(time.Duration(1<<62-1), false)
}

func (k *Kernel) run(until time.Duration, clamp bool) int {
	dispatched := 0
	k.mu.Lock()
	for !k.stopped {
		for k.runnable > 0 && !k.stopped {
			k.cond.Wait()
		}
		if k.stopped {
			break
		}
		if len(k.queue) == 0 {
			if clamp && k.now < until {
				k.now = until
			}
			break
		}
		next := k.queue[0]
		if next.at > until {
			if clamp {
				k.now = until
			}
			break
		}
		heap.Pop(&k.queue)
		if next.at > k.now {
			k.now = next.at
		}
		k.events++
		dispatched++
		k.mu.Unlock()
		next.fn()
		k.mu.Lock()
	}
	k.mu.Unlock()
	return dispatched
}

// Stop shuts the kernel down: queued events are discarded and blocked
// processes are released with core.ErrStopped.
func (k *Kernel) Stop() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stopped {
		return
	}
	k.stopped = true
	k.queue = nil
	close(k.stopCh)
	k.cond.Broadcast()
}

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.stopped
}
