// Package simnet is a deterministic discrete-event simulation kernel in
// the style of SimJava, which the paper used for its scale-up study
// (§5.1). Simulated activities ("processes") are ordinary goroutines that
// block on virtual time — Sleep, Future.Await, RPC round trips — while
// the kernel advances a virtual clock through a totally ordered event
// queue.
//
// Determinism. The kernel runs at most one process at any real-time
// instant: an event is dispatched only when every process is blocked, and
// each event wakes at most one process. Together with seeded RNG streams
// this makes whole simulations bit-reproducible, which the tests assert.
// It also means protocol code needs no locking when run under simnet,
// although it keeps its locks so the same code runs on real transports.
//
// Scale. The event queue is sharded: events hash over a small set of
// per-shard binary heaps by sequence number, and a merge layer picks the
// global (at, seq) minimum by scanning the shard heads. Orderings are
// identical to a single heap — (at, seq) is a total order — but each
// sift touches a heap 1/numShards the size. Events are recycled through
// a free list and wake-up channels through sync.Pools, so the hot
// schedule/fire path allocates nothing in steady state (pinned by
// TestKernelScheduleFireAllocs). The docs/PERFORMANCE.md trajectory
// tracks the resulting events/sec at 1k/10k/100k simulated peers.
package simnet

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
)

// numShards is the event-queue fan-out. A power of two so the shard of a
// sequence number is a mask, small enough that scanning every shard head
// is a handful of compares.
const numShards = 8

// eventKind discriminates what dispatching an event does. Keeping the
// behaviour in the kernel (instead of a per-event closure) is what lets
// events be pooled and dispatched without allocation.
type eventKind uint8

const (
	// kindGo starts a process that was counted at schedule time.
	kindGo eventKind = iota
	// kindProc starts a process counted at fire time (After/AfterProc).
	kindProc
	// kindCall runs a plain callback inline on the kernel loop — no
	// process, no goroutine. The callback must not block in virtual
	// time.
	kindCall
	// kindSleep wakes a process blocked in Sleep.
	kindSleep
	// kindResolve wakes a process blocked in Future.Await with the value.
	kindResolve
	// kindTimeout wakes a process blocked in Future.Await with
	// core.ErrTimeout.
	kindTimeout
)

// event is one entry in the kernel's queue. Events are ordered by
// (at, seq) so simultaneous events run in schedule order.
type event struct {
	at   time.Duration
	seq  uint64
	kind eventKind
	fn   func()        // kindGo, kindProc (closure form)
	cfn  func(any)     // kindCall, kindProc (arg form)
	arg  any           // cfn's argument
	ch   chan struct{} // kindSleep wake-up
	f    *Future       // kindResolve / kindTimeout
	w    chan awaitResult
	t    *Timer // kindProc cancel guard; nil for AfterProc
	// index is the event's position in its shard heap; -1 once popped
	// or removed.
	index int32
	shard int32
}

// less orders events by (at, seq) — the same total order a single heap
// would impose.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Kernel is the simulation engine. Create one with New, spawn processes
// with Go, then drive it with Run / RunUntilIdle.
type Kernel struct {
	mu       sync.Mutex
	cond     *sync.Cond
	now      time.Duration
	seq      uint64
	shards   [numShards][]*event
	queued   int      // total events across shards
	free     []*event // recycled events
	runnable int      // processes currently executing user code
	procs    int      // live processes (running or blocked)
	stopped  bool
	stopCh   chan struct{}
	seed     int64
	events   uint64 // dispatched events, for diagnostics
}

// New creates a kernel whose RNG streams derive from seed.
func New(seed int64) *Kernel {
	k := &Kernel{stopCh: make(chan struct{}), seed: seed}
	k.cond = sync.NewCond(&k.mu)
	return k
}

// Now returns the current virtual time. Safe from any goroutine.
func (k *Kernel) Now() time.Duration {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.now
}

// Events returns the number of events dispatched so far.
func (k *Kernel) Events() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.events
}

// QueueLen returns the number of events currently scheduled.
func (k *Kernel) QueueLen() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.queued
}

// LiveProcs returns the number of processes that exist (running or
// blocked). Useful for detecting leaks in tests.
func (k *Kernel) LiveProcs() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.procs
}

// NewRand derives an independent, deterministic RNG stream for a named
// component (e.g. "churn", "latency", "node:17").
func (k *Kernel) NewRand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", k.seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// alloc takes an event off the free list; caller must hold k.mu.
func (k *Kernel) alloc() *event {
	if n := len(k.free); n > 0 {
		ev := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a dispatched or removed event to the free list,
// dropping every reference it held; caller must hold k.mu.
func (k *Kernel) recycle(ev *event) {
	ev.fn, ev.cfn, ev.arg = nil, nil, nil
	ev.ch, ev.f, ev.w, ev.t = nil, nil, nil, nil
	ev.index = -1
	k.free = append(k.free, ev)
}

// push enqueues an event of the given kind; caller must hold k.mu and
// fill the kind's payload fields on the returned event.
func (k *Kernel) push(at time.Duration, kind eventKind) *event {
	if at < k.now {
		at = k.now
	}
	ev := k.alloc()
	ev.at, ev.seq, ev.kind = at, k.seq, kind
	k.seq++
	s := int32(ev.seq & (numShards - 1))
	ev.shard = s
	ev.index = int32(len(k.shards[s]))
	k.shards[s] = append(k.shards[s], ev)
	k.siftUp(s, ev.index)
	k.queued++
	return ev
}

// siftUp restores the heap property of shard s upward from index i;
// caller must hold k.mu.
func (k *Kernel) siftUp(s, i int32) {
	h := k.shards[s]
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = ev
	ev.index = i
}

// siftDown restores the heap property of shard s downward from index i;
// caller must hold k.mu.
func (k *Kernel) siftDown(s, i int32) {
	h := k.shards[s]
	n := int32(len(h))
	ev := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && less(h[c+1], h[c]) {
			c++
		}
		if !less(h[c], ev) {
			break
		}
		h[i] = h[c]
		h[i].index = i
		i = c
	}
	h[i] = ev
	ev.index = i
}

// peekMin scans the shard heads for the globally next event (the merge
// layer); caller must hold k.mu. Returns nil when no event is queued.
func (k *Kernel) peekMin() *event {
	var best *event
	for s := 0; s < numShards; s++ {
		h := k.shards[s]
		if len(h) == 0 {
			continue
		}
		if best == nil || less(h[0], best) {
			best = h[0]
		}
	}
	return best
}

// pop detaches the head event ev from its shard; caller must hold k.mu
// and have found ev via peekMin. The event is NOT recycled — the caller
// dispatches it first.
func (k *Kernel) pop(ev *event) {
	s := ev.shard
	h := k.shards[s]
	n := int32(len(h)) - 1
	if n > 0 {
		h[0] = h[n]
		h[0].index = 0
	}
	h[n] = nil
	k.shards[s] = h[:n]
	if n > 1 {
		k.siftDown(s, 0)
	}
	k.queued--
	ev.index = -1
}

// remove deletes a queued event and recycles it; caller must hold k.mu.
// Removing an already-popped event is a no-op.
func (k *Kernel) remove(ev *event) {
	s := ev.shard
	i := ev.index
	h := k.shards[s]
	if i < 0 || int(i) >= len(h) || h[i] != ev {
		return
	}
	n := int32(len(h)) - 1
	if i != n {
		h[i] = h[n]
		h[i].index = i
	}
	h[n] = nil
	k.shards[s] = h[:n]
	if i < n {
		// The swapped-in element may need to move either way.
		moved := k.shards[s][i]
		k.siftDown(s, i)
		if moved.index == i {
			k.siftUp(s, i)
		}
	}
	k.queued--
	k.recycle(ev)
}

// Go spawns a process at the current virtual time. fn runs on its own
// goroutine but is serialized with every other process by the kernel. May
// be called from inside or outside the simulation.
func (k *Kernel) Go(fn func()) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stopped {
		return
	}
	k.procs++
	k.push(k.now, kindGo).fn = fn
}

// exitProc retires a finished process.
func (k *Kernel) exitProc() {
	k.mu.Lock()
	k.runnable--
	k.procs--
	k.cond.Signal()
	k.mu.Unlock()
}

// sleepChPool recycles Sleep wake-up channels. A channel is returned to
// the pool only after its wake-up was cleanly received; the stop path
// abandons the channel instead (a send may still sit in its buffer).
var sleepChPool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// Sleep blocks the calling process for d of virtual time. Must be called
// from a process goroutine. Returns core.ErrStopped if the kernel is shut
// down while sleeping.
func (k *Kernel) Sleep(d time.Duration) error {
	ch := sleepChPool.Get().(chan struct{})
	k.mu.Lock()
	if k.stopped {
		k.mu.Unlock()
		sleepChPool.Put(ch)
		return core.ErrStopped
	}
	k.push(k.now+d, kindSleep).ch = ch
	k.block()
	k.mu.Unlock()
	select {
	case <-ch:
		sleepChPool.Put(ch)
		return nil
	case <-k.stopCh:
		return core.ErrStopped
	}
}

// block marks the calling process as no longer runnable; caller must hold
// k.mu.
func (k *Kernel) block() {
	k.runnable--
	k.cond.Signal()
}

// After schedules fn to run as a new process after delay d. The returned
// Timer can cancel it before it fires.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	t := &Timer{k: k}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stopped {
		t.fired = true
		return t
	}
	ev := k.push(k.now+d, kindProc)
	ev.fn = fn
	ev.t = t
	t.ev = ev
	return t
}

// AfterProc schedules fn(arg) to run as a new process after delay d,
// like After but without a cancel handle and without a per-call closure —
// the allocation-free form for fire-and-forget deliveries whose handler
// may block in virtual time.
func (k *Kernel) AfterProc(d time.Duration, fn func(any), arg any) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stopped {
		return
	}
	ev := k.push(k.now+d, kindProc)
	ev.cfn = fn
	ev.arg = arg
}

// AfterCall schedules fn(arg) to run inline on the kernel loop after
// delay d: no process, no goroutine, no cancel handle. fn must not block
// in virtual time (no Sleep/Await) — it may schedule further events,
// resolve futures and spawn processes. This is the cheapest way to act
// at a future instant and the backbone of the simulated wire.
func (k *Kernel) AfterCall(d time.Duration, fn func(any), arg any) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stopped {
		return
	}
	ev := k.push(k.now+d, kindCall)
	ev.cfn = fn
	ev.arg = arg
}

// Timer is a cancellable delayed process handle.
type Timer struct {
	k        *Kernel
	ev       *event
	canceled bool
	fired    bool
}

// Cancel prevents the timer from firing. Returns true if it was stopped
// before firing.
func (t *Timer) Cancel() bool {
	t.k.mu.Lock()
	defer t.k.mu.Unlock()
	if t.fired || t.canceled {
		return false
	}
	t.canceled = true
	if t.ev != nil {
		t.k.remove(t.ev)
		t.ev = nil
	}
	return true
}

// Run advances virtual time, dispatching events until the queue is empty
// or the next event lies beyond `until`. On return every process is
// blocked (or exited) and now == until exactly, so repeated Run calls
// step the clock through fixed horizons. It reports the number of events
// dispatched by this call.
func (k *Kernel) Run(until time.Duration) int {
	return k.run(until, true)
}

// RunUntilIdle dispatches events until none remain, leaving the clock at
// the time of the last event. It reports the number of events dispatched.
func (k *Kernel) RunUntilIdle() int {
	return k.run(time.Duration(1<<62-1), false)
}

func (k *Kernel) run(until time.Duration, clamp bool) int {
	dispatched := 0
	k.mu.Lock()
	for !k.stopped {
		for k.runnable > 0 && !k.stopped {
			k.cond.Wait()
		}
		if k.stopped {
			break
		}
		next := k.peekMin()
		if next == nil {
			if clamp && k.now < until {
				k.now = until
			}
			break
		}
		if next.at > until {
			if clamp {
				k.now = until
			}
			break
		}
		k.pop(next)
		if next.at > k.now {
			k.now = next.at
		}
		k.events++
		dispatched++
		k.dispatch(next)
		if k.stopped {
			break
		}
		k.recycle(next)
	}
	k.mu.Unlock()
	return dispatched
}

// dispatch performs a popped event's action; caller holds k.mu (released
// around kindCall callbacks). Wake-up sends go to buffered channels with
// at most one outstanding send each, so sending under the lock cannot
// block.
func (k *Kernel) dispatch(ev *event) {
	switch ev.kind {
	case kindGo:
		fn := ev.fn
		k.runnable++
		go func() {
			defer k.exitProc()
			fn()
		}()
	case kindProc:
		if t := ev.t; t != nil {
			if t.canceled {
				return
			}
			t.fired = true
			t.ev = nil
		}
		k.procs++
		k.runnable++
		if ev.cfn != nil {
			cfn, arg := ev.cfn, ev.arg
			go func() {
				defer k.exitProc()
				cfn(arg)
			}()
		} else {
			fn := ev.fn
			go func() {
				defer k.exitProc()
				fn()
			}()
		}
	case kindCall:
		cfn, arg := ev.cfn, ev.arg
		k.mu.Unlock()
		cfn(arg)
		k.mu.Lock()
	case kindSleep:
		k.runnable++
		ev.ch <- struct{}{}
	case kindResolve:
		f := ev.f
		if f.delivered {
			return
		}
		f.delivered = true
		k.runnable++
		ev.w <- awaitResult{val: f.val}
	case kindTimeout:
		f := ev.f
		if f.delivered {
			return
		}
		f.delivered = true
		k.runnable++
		ev.w <- awaitResult{err: core.ErrTimeout}
	}
}

// Stop shuts the kernel down: queued events are discarded and blocked
// processes are released with core.ErrStopped.
func (k *Kernel) Stop() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stopped {
		return
	}
	k.stopped = true
	for s := range k.shards {
		k.shards[s] = nil
	}
	k.queued = 0
	k.free = nil
	close(k.stopCh)
	k.cond.Broadcast()
}

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.stopped
}
