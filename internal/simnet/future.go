package simnet

import (
	"sync"
	"time"

	"repro/internal/core"
)

// Future is a single-producer, single-consumer rendezvous in virtual
// time: one process awaits the value, any process (or event) resolves it
// once. It is the building block for simulated RPC replies.
type Future struct {
	k         *Kernel
	resolved  bool
	val       any
	waiter    chan awaitResult // non-nil while a process is blocked
	delivered bool             // a wake-up (value or timeout) was handed over
}

type awaitResult struct {
	val any
	err error
}

// waiterPool recycles Await wake-up channels. A channel is returned only
// after its single send was cleanly received; the stop path abandons it.
// Stale events that still reference a recycled channel are inert: the
// future's delivered flag stops them before they send.
var waiterPool = sync.Pool{New: func() any { return make(chan awaitResult, 1) }}

// NewFuture creates an unresolved future.
func (k *Kernel) NewFuture() *Future { return &Future{k: k} }

// Resolve supplies the value. Only the first resolution counts; later
// calls are ignored, which lets duplicate deliveries (retries) race
// safely.
func (f *Future) Resolve(v any) {
	k := f.k
	k.mu.Lock()
	defer k.mu.Unlock()
	if f.resolved || k.stopped {
		return
	}
	f.resolved = true
	f.val = v
	if f.waiter == nil {
		return // consumer not blocked yet; Await will fast-path
	}
	ev := k.push(k.now, kindResolve)
	ev.f = f
	ev.w = f.waiter
}

// Await blocks the calling process until the future resolves or the
// timeout elapses (timeout <= 0 means wait forever). It must be called
// from a process goroutine, at most once per future.
func (f *Future) Await(timeout time.Duration) (any, error) {
	k := f.k
	k.mu.Lock()
	if f.resolved {
		v := f.val
		k.mu.Unlock()
		return v, nil
	}
	if k.stopped {
		k.mu.Unlock()
		return nil, core.ErrStopped
	}
	w := waiterPool.Get().(chan awaitResult)
	f.waiter = w
	if timeout > 0 {
		ev := k.push(k.now+timeout, kindTimeout)
		ev.f = f
		ev.w = w
	}
	k.block()
	k.mu.Unlock()
	select {
	case r := <-w:
		waiterPool.Put(w)
		return r.val, r.err
	case <-k.stopCh:
		return nil, core.ErrStopped
	}
}
