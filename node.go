package dcdht

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/brk"
	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/dht"
	"repro/internal/hashing"
	"repro/internal/kts"
	"repro/internal/network"
	"repro/internal/network/tcpwire"
	"repro/internal/obs"
	"repro/internal/onehop"
	"repro/internal/repair"
	"repro/internal/store"
	"repro/internal/ums"
)

// FsyncPolicy selects when a durable node's write-ahead log reaches
// stable storage (see docs/STORAGE.md for the trade-offs).
type FsyncPolicy = store.SyncPolicy

// The fsync policies, in decreasing durability / increasing throughput.
const (
	// FsyncAlways fsyncs after every append.
	FsyncAlways = store.SyncAlways
	// FsyncBatch flushes on a short background interval.
	FsyncBatch = store.SyncBatch
	// FsyncOS leaves flushing to the OS page cache (default).
	FsyncOS = store.SyncOS
)

// ParseFsyncPolicy parses the -fsync flag spellings "always", "batch"
// and "os" (empty means the default).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return store.ParseSyncPolicy(s) }

// Storage errors, for classifying StartNode failures with errors.Is.
var (
	// ErrStorage marks any storage failure (unusable data dir, write
	// errors, corruption).
	ErrStorage = store.ErrStore
	// ErrCorruptLog marks unrecoverable mid-log or snapshot corruption in
	// the data directory — a torn final record (the normal crash residue)
	// is repaired silently and never raises it.
	ErrCorruptLog = store.ErrCorruptLog
)

// NodeConfig tunes a real (TCP) peer. All peers of one ring must agree
// on Replicas.
type NodeConfig struct {
	// Replicas is |Hr|. Default 10.
	Replicas int
	// Ring picks the overlay substrate (RingChord, RingCAN or
	// RingOneHop). The zero value keeps the paper's Chord. All members
	// of one deployment must run the same substrate.
	Ring Ring
	// Mode selects the counter initialization strategy. Default direct.
	Mode Mode
	// Seed drives the node's jitter streams; 0 derives one from the
	// clock.
	Seed int64
	// StabilizeEvery overrides the maintenance period (default 1s on
	// real deployments, where RPCs are cheap).
	StabilizeEvery time.Duration
	// GraceDelay overrides the indirect algorithm's wait. Zero selects
	// the KTS default (500ms); a negative value means "no wait".
	GraceDelay time.Duration
	// Inspect enables KTS periodic inspection (§4.2.2) with the given
	// period: the responsible re-reads replicas and raises counters that
	// initialization under-estimated. Zero disables it.
	Inspect time.Duration
	// InspectPerRound caps how many counters one inspection round
	// re-reads. Default 4.
	InspectPerRound int
	// RepairEvery enables the replica-maintenance subsystem's
	// anti-entropy sweep with the given period: the node periodically
	// re-pushes the current value of the keys it hosts to the current
	// replica set, healing replicas lost to churn. Zero disables it.
	RepairEvery time.Duration
	// RepairPerRound caps how many keys one sweep round repairs.
	// Default 8.
	RepairPerRound int
	// ReadRepair enables opportunistic read-repair: a retrieve that
	// observes stale or missing replicas among the probed positions
	// refreshes them asynchronously with the value it found.
	ReadRepair bool
	// PathCache gives the node a lookup path cache with this many arcs:
	// resolved lookups are remembered per key range and re-used after a
	// liveness-and-ownership probe, cutting repeat-lookup hops on any
	// substrate. Zero disables it.
	PathCache int
	// RepublishEvery enables the periodic republisher with the given
	// period: the node re-pushes replicas it still holds but no longer
	// owns to the current responsible. Zero disables it.
	RepublishEvery time.Duration
	// RepublishPerRound caps how many keys one republish round pushes.
	// Default 16.
	RepublishPerRound int
	// DataDir, when non-empty, makes the node durable: hosted replicas
	// and KTS counters are persisted to a write-ahead log in this
	// directory and recovered on the next start, feeding the paper's
	// §4.2.2 restart path (a restarted responsible generates strictly
	// increasing timestamps and ships its counters to whoever is
	// responsible now). Empty keeps the volatile default: a crash loses
	// everything.
	DataDir string
	// Fsync selects the durability of each log append; only meaningful
	// with DataDir. Default FsyncOS.
	Fsync FsyncPolicy
}

// Node is one real peer: a TCP endpoint running Chord, KTS, UMS and BRK
// — the deployment unit of the paper's cluster experiment — plus the
// replica-maintenance subsystem when enabled.
type Node struct {
	env    *network.RealEnv
	ep     *tcpwire.Endpoint
	ring   dht.RingNode
	cache  *dht.CachedRing  // nil when the path cache is off
	repub  *dht.Republisher // nil when republish is off
	kts    *kts.Service
	ums    *ums.Service
	brk    *brk.Service
	repair *repair.Service // nil when maintenance is off
	wal    *store.WAL      // nil when the node is volatile
	obs    *obs.Registry
}

// StartNode opens a TCP endpoint on listen ("127.0.0.1:0" picks a free
// port) and prepares all services. Call CreateRing or Join next.
func StartNode(listen string, cfg NodeConfig) (*Node, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 10
	}
	if cfg.StabilizeEvery == 0 {
		cfg.StabilizeEvery = time.Second
	}
	reg := obs.NewRegistry()
	ep, err := tcpwire.ListenWith(listen, reg)
	if err != nil {
		return nil, fmt.Errorf("dcdht: start node: %w", err)
	}
	var wal *store.WAL
	if cfg.DataDir != "" {
		wal, err = store.OpenWAL(cfg.DataDir, store.WALOptions{Policy: cfg.Fsync})
		if err != nil {
			ep.Close()
			return nil, fmt.Errorf("dcdht: start node: %w", err)
		}
	}
	env := network.NewRealEnv(cfg.Seed)
	// Replicas and counters share the one recoverable unit (when
	// durable). The node's ring position derives from its listen
	// address, so a restart on the same address resumes the same arc —
	// the recovered replicas are the ones it is responsible for again.
	var backing store.Store
	if wal != nil {
		backing = wal
	}
	var node dht.RingNode
	switch cfg.Ring {
	case "", RingChord:
		node = chord.New(env, ep, hashing.NodeID(string(ep.Addr())), chord.Config{
			StabilizeEvery:  cfg.StabilizeEvery,
			FixFingersEvery: cfg.StabilizeEvery,
			CheckPredEvery:  cfg.StabilizeEvery,
			RPCTimeout:      2 * time.Second,
			Obs:             reg,
			Store:           backing,
		})
	case RingCAN:
		node = can.New(env, ep, hashing.NodeID(string(ep.Addr())), can.Config{
			PingEvery:  cfg.StabilizeEvery,
			RPCTimeout: 2 * time.Second,
			Obs:        reg,
			Store:      backing,
		})
	case RingOneHop:
		node = onehop.New(env, ep, hashing.NodeID(string(ep.Addr())), onehop.Config{
			PingEvery:  cfg.StabilizeEvery,
			RPCTimeout: 2 * time.Second,
			Obs:        reg,
			Store:      backing,
		})
	default:
		if wal != nil {
			wal.Close()
		}
		ep.Close()
		return nil, fmt.Errorf("dcdht: start node: unknown ring %q (want chord, can or onehop)", cfg.Ring)
	}
	// The service-facing ring: the node itself, or the path cache
	// around it.
	var ring dht.Ring = node
	var cache *dht.CachedRing
	if cfg.PathCache > 0 {
		cache = dht.NewCachedRing(node, dht.PathCacheConfig{Capacity: cfg.PathCache, Obs: reg})
		ring = cache
	}
	set := hashing.NewSet(cfg.Replicas)
	ktsCfg := kts.Config{
		Mode:            cfg.Mode,
		GraceDelay:      cfg.GraceDelay,
		InspectEvery:    cfg.Inspect,
		InspectPerRound: cfg.InspectPerRound,
		RPCTimeout:      30 * time.Second,
		Obs:             reg,
	}
	if wal != nil {
		ktsCfg.Persist = wal
	}
	ktsSvc := kts.New(ring, set, ums.Namespace, ktsCfg)
	if wal != nil {
		// Seed the counter service with what the log retained, so the
		// first gen_ts after a restart continues above every timestamp
		// granted before the crash instead of re-deriving from replicas.
		recovered := wal.Counters()
		entries := make([]kts.CounterEntry, 0, len(recovered))
		for _, c := range recovered {
			entries = append(entries, kts.CounterEntry{Key: c.Key, TS: c.TS})
		}
		ktsSvc.SeedCounters(entries)
	}
	n := &Node{
		env:   env,
		ep:    ep,
		ring:  node,
		cache: cache,
		kts:   ktsSvc,
		ums:   ums.New(ring, set, ktsSvc),
		brk:   brk.New(ring, set),
		wal:   wal,
		obs:   reg,
	}
	if cfg.RepublishEvery > 0 {
		n.repub = dht.NewRepublisher(ring, node.Store(), dht.RepublishConfig{
			Every:    cfg.RepublishEvery,
			PerRound: cfg.RepublishPerRound,
			Obs:      reg,
		})
	}
	tracer := obs.NewMetricsTracer(reg)
	n.ums.SetTracer(tracer)
	n.brk.SetTracer(tracer)
	reg.GaugeFunc("dcdht_store_items",
		"Replicas this node currently hosts.",
		func() float64 { return float64(node.Store().Len()) })
	if wal != nil {
		// The WAL keeps its own counters (it must not depend on obs);
		// scrape-time collectors bridge them into the registry.
		reg.CounterFunc("dcdht_store_wal_appends_total",
			"Records appended to the write-ahead log.",
			func() float64 { return float64(wal.Stats().Appends) })
		reg.CounterFunc("dcdht_store_wal_fsyncs_total",
			"Successful fsyncs of the log and snapshot files.",
			func() float64 { return float64(wal.Stats().Fsyncs) })
		reg.CounterFunc("dcdht_store_wal_compactions_total",
			"Snapshot+truncate compaction cycles.",
			func() float64 { return float64(wal.Stats().Compactions) })
		rec := wal.Recovered()
		reg.GaugeFunc("dcdht_store_wal_recovered_records",
			"Log records replayed at the last start.",
			func() float64 { return float64(rec.Records) })
		reg.GaugeFunc("dcdht_store_wal_torn_tail",
			"1 when the last start discarded a torn final record.",
			func() float64 {
				if rec.TornTail {
					return 1
				}
				return 0
			})
	}
	rcfg := repair.Config{Every: cfg.RepairEvery, PerRound: cfg.RepairPerRound, ReadRepair: cfg.ReadRepair, Obs: reg}
	if rcfg.Enabled() {
		n.repair = repair.New(ring, set, ktsSvc, node.Store(), ums.Namespace, rcfg)
		n.ums.SetReadRepair(n.repair)
	}
	return n, nil
}

// Addr returns the node's listen address (give it to joiners).
func (n *Node) Addr() string { return string(n.ep.Addr()) }

// CreateRing makes this node the first of a new ring and starts
// maintenance (Chord stabilization plus the replica-maintenance sweep,
// when enabled).
func (n *Node) CreateRing() {
	n.ring.CreateRing()
	n.ring.Start()
	n.startRepair()
	n.startRepublish()
}

// Join attaches this node to the ring reachable at bootstrap and starts
// maintenance. A durable node that recovered counters also runs the
// §4.2.2 recovery strategy in the background: it ships them to whoever
// is responsible now, so counters that moved on while this node was
// down get corrected upward (use Recover directly for a synchronous,
// deterministic run).
func (n *Node) Join(bootstrap string) error {
	if err := n.ring.Join(network.Addr(bootstrap)); err != nil {
		return err
	}
	n.ring.Start()
	n.startRepair()
	n.startRepublish()
	if n.wal != nil && n.Recovered().Counters > 0 {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			n.kts.RecoverTo(ctx)
		}()
	}
	return nil
}

// Recovered reports what a durable node reconstructed from its data
// directory at start; zero for a volatile node.
func (n *Node) Recovered() store.Recovered {
	if n.wal == nil {
		return store.Recovered{}
	}
	return n.wal.Recovered()
}

// Recover synchronously ships the node's counters to the peers
// currently responsible for them (§4.2.2's recovery strategy),
// returning how many remote counters were corrected upward. Join
// already triggers this in the background after a durable restart.
func (n *Node) Recover(ctx context.Context) (int, error) {
	return n.kts.RecoverTo(ctx)
}

func (n *Node) startRepair() {
	if n.repair != nil {
		n.repair.Start()
	}
}

func (n *Node) startRepublish() {
	if n.repub != nil {
		n.repub.Start()
	}
}

// PathCacheStats reports the lookup path cache's counters (zero when
// NodeConfig.PathCache is off).
func (n *Node) PathCacheStats() PathCacheStats {
	if n.cache == nil {
		return PathCacheStats{}
	}
	return n.cache.Stats()
}

// Republished reports how many replicas the periodic republisher has
// pushed to their current responsible (zero when RepublishEvery is
// off).
func (n *Node) Republished() uint64 {
	if n.repub == nil {
		return 0
	}
	return n.repub.Pushed()
}

// RepairStats reports the replica-maintenance subsystem's counters for
// this node (zero when RepairEvery and ReadRepair are both off).
func (n *Node) RepairStats() RepairStats {
	if n.repair == nil {
		return RepairStats{}
	}
	return n.repair.Stats()
}

// nodeOpts resolves and validates options for an operation issued from
// this node: on top of the generic validation, an issuer pin is
// rejected with ErrBadOption — a Node always issues from itself.
func nodeOpts(what string, key Key, opts []OpOption) (opConfig, error) {
	oc, err := resolveOpts(opts)
	if err == nil && oc.issuerSet {
		err = fmt.Errorf("WithIssuer on a TCP node (a node always issues from itself): %w", ErrBadOption)
	}
	if err != nil {
		return oc, fmt.Errorf("dcdht: %s(%q): %w", what, key, err)
	}
	return oc, nil
}

// Put implements Client: it stores data under key with a fresh
// timestamp, issued from this node. The context's deadline and
// cancellation are honored natively by the TCP transport.
func (n *Node) Put(ctx context.Context, key Key, data []byte, opts ...OpOption) (Result, error) {
	oc, err := nodeOpts("put", key, opts)
	if err != nil {
		return Result{}, err
	}
	if oc.alg == AlgBRK {
		return n.brk.Insert(ctx, key, data)
	}
	return n.ums.Insert(ctx, key, data)
}

// Get implements Client: it returns the current replica of key, at the
// requested consistency level (WithConsistency; provably current by
// default).
func (n *Node) Get(ctx context.Context, key Key, opts ...OpOption) (Result, error) {
	oc, err := nodeOpts("get", key, opts)
	if err != nil {
		return Result{}, err
	}
	if oc.alg == AlgBRK {
		return n.brk.Retrieve(ctx, key)
	}
	return n.ums.RetrieveWith(ctx, key, oc.readPolicy())
}

// LastTS implements Client: it asks KTS for the last timestamp
// generated for key. With WithConsistency(Bounded(d)) a cached answer
// observed at most d ago is served without a network hop (and Eventual
// serves any cached answer).
func (n *Node) LastTS(ctx context.Context, key Key, opts ...OpOption) (Timestamp, error) {
	oc, err := nodeOpts("last_ts", key, opts)
	if err != nil {
		return Timestamp{}, err
	}
	if ts, ok := cachedLastTS(n.kts, key, oc); ok {
		return ts, nil
	}
	return n.kts.LastTS(ctx, key)
}

// PutMulti implements Client: UMS writes share one batched KTS round
// per responsible (kts.GenTSBatch), then replicate concurrently, with
// per-key error isolation. BRK writes have no KTS round to batch and
// fan out per key. Invalid options fail the batch as a whole.
func (n *Node) PutMulti(ctx context.Context, items []KV, opts ...OpOption) ([]MultiResult, error) {
	oc, err := nodeOpts("put multi", "", opts)
	if err != nil {
		return nil, err
	}
	if oc.alg == AlgBRK {
		return nodeMulti(ctx, len(items), func(i int) (Key, Result, error) {
			r, err := n.brk.Insert(ctx, items[i].Key, items[i].Data)
			return items[i].Key, r, err
		})
	}
	if cerr := network.CtxError(ctx); cerr != nil {
		return nil, fmt.Errorf("dcdht: %w", cerr)
	}
	keys := make([]Key, len(items))
	datas := make([][]byte, len(items))
	for i, it := range items {
		keys[i], datas[i] = it.Key, it.Data
	}
	results, errs := n.ums.InsertMulti(ctx, keys, datas)
	out := make([]MultiResult, len(items))
	for i := range out {
		out[i] = MultiResult{Key: keys[i], Result: results[i], Err: errs[i]}
	}
	return out, nil
}

// GetMulti implements Client: UMS reads at the provably-current level
// share one batched KTS last_ts round per responsible
// (kts.LastTSBatch); the relaxed levels and BRK fan out per key. Every
// outcome keeps its per-key error isolation.
func (n *Node) GetMulti(ctx context.Context, keys []Key, opts ...OpOption) ([]MultiResult, error) {
	oc, err := nodeOpts("get multi", "", opts)
	if err != nil {
		return nil, err
	}
	if oc.alg == AlgBRK {
		return nodeMulti(ctx, len(keys), func(i int) (Key, Result, error) {
			r, err := n.brk.Retrieve(ctx, keys[i])
			return keys[i], r, err
		})
	}
	if cerr := network.CtxError(ctx); cerr != nil {
		return nil, fmt.Errorf("dcdht: %w", cerr)
	}
	results, errs := n.ums.RetrieveMulti(ctx, keys, oc.readPolicy())
	out := make([]MultiResult, len(keys))
	for i := range out {
		out[i] = MultiResult{Key: keys[i], Result: results[i], Err: errs[i]}
	}
	return out, nil
}

// nodeMulti fans count sub-operations out concurrently and gathers
// per-key outcomes.
func nodeMulti(ctx context.Context, count int, one func(i int) (Key, Result, error)) ([]MultiResult, error) {
	if err := network.CtxError(ctx); err != nil {
		return nil, fmt.Errorf("dcdht: %w", err)
	}
	out := make([]MultiResult, count)
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, r, err := one(i)
			out[i] = MultiResult{Key: k, Result: r, Err: err}
		}(i)
	}
	wg.Wait()
	return out, nil
}

// Leave departs gracefully, handing replicas and counters to the
// successor, flushing and closing the durable store (when there is
// one), then closes the endpoint.
func (n *Node) Leave() error {
	err := n.ring.Leave()
	if n.wal != nil {
		if cerr := n.wal.Close(); err == nil {
			err = cerr
		}
	}
	n.env.Close()
	n.ep.Close()
	return err
}

// Close shuts the node down abruptly (crash semantics: no handoff, no
// flush — a durable store keeps only what its fsync policy had already
// made stable, exactly like SIGKILL).
func (n *Node) Close() {
	n.ring.Crash()
	n.env.Close()
	n.ep.Close()
}
