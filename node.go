package dcdht

import (
	"fmt"
	"time"

	"repro/internal/brk"
	"repro/internal/chord"
	"repro/internal/hashing"
	"repro/internal/kts"
	"repro/internal/network"
	"repro/internal/network/tcpwire"
	"repro/internal/ums"
)

// NodeConfig tunes a real (TCP) peer. All peers of one ring must agree
// on Replicas.
type NodeConfig struct {
	// Replicas is |Hr|. Default 10.
	Replicas int
	// Mode selects the counter initialization strategy. Default direct.
	Mode Mode
	// Seed drives the node's jitter streams; 0 derives one from the
	// clock.
	Seed int64
	// StabilizeEvery overrides the maintenance period (default 1s on
	// real deployments, where RPCs are cheap).
	StabilizeEvery time.Duration
	// GraceDelay overrides the indirect algorithm's wait.
	GraceDelay time.Duration
}

// Node is one real peer: a TCP endpoint running Chord, KTS, UMS and BRK
// — the deployment unit of the paper's cluster experiment.
type Node struct {
	env   *network.RealEnv
	ep    *tcpwire.Endpoint
	chord *chord.Node
	kts   *kts.Service
	ums   *ums.Service
	brk   *brk.Service
}

// StartNode opens a TCP endpoint on listen ("127.0.0.1:0" picks a free
// port) and prepares all services. Call CreateRing or Join next.
func StartNode(listen string, cfg NodeConfig) (*Node, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 10
	}
	if cfg.StabilizeEvery == 0 {
		cfg.StabilizeEvery = time.Second
	}
	ep, err := tcpwire.Listen(listen)
	if err != nil {
		return nil, fmt.Errorf("dcdht: start node: %w", err)
	}
	env := network.NewRealEnv(cfg.Seed)
	chordCfg := chord.Config{
		StabilizeEvery:  cfg.StabilizeEvery,
		FixFingersEvery: cfg.StabilizeEvery,
		CheckPredEvery:  cfg.StabilizeEvery,
		RPCTimeout:      2 * time.Second,
	}
	node := chord.New(env, ep, hashing.NodeID(string(ep.Addr())), chordCfg)
	set := hashing.NewSet(cfg.Replicas)
	ktsSvc := kts.New(node, set, ums.Namespace, kts.Config{
		Mode:       cfg.Mode,
		GraceDelay: cfg.GraceDelay,
		RPCTimeout: 30 * time.Second,
	})
	return &Node{
		env:   env,
		ep:    ep,
		chord: node,
		kts:   ktsSvc,
		ums:   ums.New(node, set, ktsSvc),
		brk:   brk.New(node, set),
	}, nil
}

// Addr returns the node's listen address (give it to joiners).
func (n *Node) Addr() string { return string(n.ep.Addr()) }

// CreateRing makes this node the first of a new ring and starts
// maintenance.
func (n *Node) CreateRing() {
	n.chord.CreateRing()
	n.chord.Start()
}

// Join attaches this node to the ring reachable at bootstrap and starts
// maintenance.
func (n *Node) Join(bootstrap string) error {
	if err := n.chord.Join(network.Addr(bootstrap)); err != nil {
		return err
	}
	n.chord.Start()
	return nil
}

// Insert stores data under key with a fresh timestamp (UMS).
func (n *Node) Insert(key Key, data []byte) (Result, error) {
	return n.ums.Insert(key, data)
}

// Retrieve returns the current replica of key (UMS).
func (n *Node) Retrieve(key Key) (Result, error) {
	return n.ums.Retrieve(key)
}

// InsertBRK runs the baseline's update.
func (n *Node) InsertBRK(key Key, data []byte) (Result, error) {
	return n.brk.Insert(key, data)
}

// RetrieveBRK runs the baseline's retrieval.
func (n *Node) RetrieveBRK(key Key) (Result, error) {
	return n.brk.Retrieve(key)
}

// LastTS asks KTS for the last timestamp generated for key.
func (n *Node) LastTS(key Key) (Timestamp, error) {
	return n.kts.LastTS(key, nil)
}

// Leave departs gracefully, handing replicas and counters to the
// successor, then closes the endpoint.
func (n *Node) Leave() error {
	err := n.chord.Leave()
	n.env.Close()
	n.ep.Close()
	return err
}

// Close shuts the node down abruptly (crash semantics: no handoff).
func (n *Node) Close() {
	n.chord.Crash()
	n.env.Close()
	n.ep.Close()
}
