// Package dcdht is a Go reproduction of "Data Currency in Replicated
// DHTs" (Akbarinia, Pacitti, Valduriez — SIGMOD 2007): an Update
// Management Service (UMS) that retrieves provably current replicas from
// a replicated DHT, built on a Key-based Timestamping Service (KTS) that
// generates monotonic per-key timestamps with distributed local counters.
//
// The package offers two deployment styles with one protocol codebase:
//
//   - NewSimNetwork builds a deterministic simulated network (virtual
//     time, the paper's Table 1 latency/bandwidth model, churn and
//     failures on demand) — the equivalent of the paper's SimJava study;
//   - StartNode runs a real peer over TCP — the equivalent of the
//     paper's 64-node cluster deployment.
//
// Both satisfy the deployment-agnostic Client interface, and both run
// reproducible YCSB-style load through RunWorkload (uniform, Zipfian,
// hot-key-update and scan-of-recent patterns with per-op latency
// histograms — see WorkloadSpec).
//
// Reads are tunable along the paper's currency/cost axis: every Get
// takes a Consistency level (WithConsistency) — Current proves
// currency against KTS, Bounded(d) accepts a cached floor within a
// staleness bound, Eventual takes the first reachable replica — and
// Result.Currency reports the claim the read earned. NewSession opens
// a Session with read-your-writes and monotonic-reads guarantees
// enforced cheaply from per-key timestamp floors. See
// docs/CONSISTENCY.md.
//
// The evaluation harness that regenerates the paper's figures lives in
// internal/exp and is exposed through cmd/dcdht-bench and the root
// benchmarks in bench_test.go. docs/ARCHITECTURE.md maps the packages;
// docs/BENCHMARKS.md documents every figure and JSON schema.
package dcdht
