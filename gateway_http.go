package dcdht

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// The HTTP/JSON front-end, for non-Go clients. Routes (see
// docs/GATEWAY.md for the full API):
//
//	PUT  /v1/kv/{key}                  body = value        → PutResponse
//	GET  /v1/kv/{key}?consistency=...                      → GetResponse
//	GET  /v1/last/{key}?consistency=...                    → LastTSResponse
//	GET  /metrics                                          → Prometheus exposition
//	GET  /debug/gateway                                    → GatewayStats JSON
//
// The consistency query parameter is "current" (default), "eventual",
// or "bounded" with a companion "bound" duration (e.g. bound=30s).

// GatewayPutResponse is the JSON document returned by PUT /v1/kv/{key}.
type GatewayPutResponse struct {
	// TS is the timestamp granted to the write.
	TS Timestamp `json:"ts"`
	// Stored is the number of replicas written.
	Stored int `json:"stored"`
	// Msgs is the message cost of the operation.
	Msgs int `json:"msgs"`
	// ElapsedMS is the operation latency in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// GatewayGetResponse is the JSON document returned by GET /v1/kv/{key}.
type GatewayGetResponse struct {
	// Data is the value (base64 in the JSON encoding, as Go marshals
	// byte slices).
	Data []byte `json:"data"`
	// TS is the returned replica's timestamp.
	TS Timestamp `json:"ts"`
	// Currency is the freshness verdict: "proven", "within-bound",
	// "session-floor" or "unknown".
	Currency string `json:"currency"`
	// FloorAgeMS is the age of the freshness evidence in milliseconds
	// (meaningful for within-bound results).
	FloorAgeMS float64 `json:"floor_age_ms,omitempty"`
	// Msgs is the message cost of the operation.
	Msgs int `json:"msgs"`
	// ElapsedMS is the operation latency in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Error carries the per-read caveat when the gateway returned the
	// most recent available replica without a currency proof.
	Error string `json:"error,omitempty"`
}

// GatewayLastTSResponse is the JSON document returned by GET /v1/last/{key}.
type GatewayLastTSResponse struct {
	// TS is the key's last generated timestamp (zero when never stamped).
	TS Timestamp `json:"ts"`
}

// httpError is the JSON error envelope for non-2xx responses.
type httpError struct {
	Error string `json:"error"`
}

// parseConsistencyQuery maps the consistency/bound query parameters to
// operation options.
func parseConsistencyQuery(q url.Values) ([]OpOption, error) {
	switch lvl := q.Get("consistency"); lvl {
	case "", "current":
		return nil, nil
	case "eventual":
		return []OpOption{WithConsistency(Eventual)}, nil
	case "bounded":
		d, err := time.ParseDuration(q.Get("bound"))
		if err != nil {
			return nil, fmt.Errorf("bounded consistency needs a bound duration (bound=30s): %v", err)
		}
		return []OpOption{WithConsistency(Bounded(d))}, nil
	default:
		return nil, fmt.Errorf("unknown consistency %q (want current, bounded or eventual)", lvl)
	}
}

// currencyLabel renders a Currency verdict for the JSON API.
func currencyLabel(c Currency) string {
	switch c {
	case CurrencyProven:
		return "proven"
	case CurrencyWithinBound:
		return "within-bound"
	case CurrencySessionFloor:
		return "session-floor"
	default:
		return "unknown"
	}
}

// ServeHTTP implements http.Handler: the gateway's JSON front-end plus
// its Prometheus exposition, so one listener serves both clients and
// scrapers.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/metrics":
		g.count("/metrics", http.StatusOK)
		g.obs.Handler().ServeHTTP(w, r)
	case r.URL.Path == "/debug/gateway":
		g.count("/debug/gateway", http.StatusOK)
		writeJSON(w, http.StatusOK, g.Stats())
	case strings.HasPrefix(r.URL.Path, "/v1/kv/"):
		g.serveKV(w, r, strings.TrimPrefix(r.URL.Path, "/v1/kv/"))
	case strings.HasPrefix(r.URL.Path, "/v1/last/"):
		g.serveLast(w, r, strings.TrimPrefix(r.URL.Path, "/v1/last/"))
	default:
		g.fail(w, "other", http.StatusNotFound, "no such route")
	}
}

func (g *Gateway) serveKV(w http.ResponseWriter, r *http.Request, rawKey string) {
	const route = "/v1/kv"
	key, ok := decodeKey(rawKey)
	if !ok {
		g.fail(w, route, http.StatusBadRequest, "bad key encoding")
		return
	}
	opts, err := parseConsistencyQuery(r.URL.Query())
	if err != nil {
		g.fail(w, route, http.StatusBadRequest, err.Error())
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<24))
		if err != nil {
			g.fail(w, route, http.StatusBadRequest, "read body: "+err.Error())
			return
		}
		res, err := g.Put(r.Context(), key, body, opts...)
		if err != nil {
			g.failOp(w, route, err)
			return
		}
		g.count(route, http.StatusOK)
		writeJSON(w, http.StatusOK, GatewayPutResponse{
			TS:        res.TS,
			Stored:    res.Stored,
			Msgs:      res.Msgs,
			ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
		})
	case http.MethodGet:
		res, err := g.Get(r.Context(), key, opts...)
		if err != nil && !IsNoCurrent(err) {
			g.failOp(w, route, err)
			return
		}
		resp := GatewayGetResponse{
			Data:       res.Data,
			TS:         res.TS,
			Currency:   currencyLabel(res.Currency),
			FloorAgeMS: float64(res.FloorAge) / float64(time.Millisecond),
			Msgs:       res.Msgs,
			ElapsedMS:  float64(res.Elapsed) / float64(time.Millisecond),
		}
		if err != nil {
			// Most recent available, currency not provable: still a
			// 200 — the value is real — with the caveat attached.
			resp.Error = err.Error()
		}
		g.count(route, http.StatusOK)
		writeJSON(w, http.StatusOK, resp)
	default:
		g.fail(w, route, http.StatusMethodNotAllowed, "use GET, PUT or POST")
	}
}

func (g *Gateway) serveLast(w http.ResponseWriter, r *http.Request, rawKey string) {
	const route = "/v1/last"
	if r.Method != http.MethodGet {
		g.fail(w, route, http.StatusMethodNotAllowed, "use GET")
		return
	}
	key, ok := decodeKey(rawKey)
	if !ok {
		g.fail(w, route, http.StatusBadRequest, "bad key encoding")
		return
	}
	opts, err := parseConsistencyQuery(r.URL.Query())
	if err != nil {
		g.fail(w, route, http.StatusBadRequest, err.Error())
		return
	}
	ts, err := g.LastTS(r.Context(), key, opts...)
	if err != nil {
		g.failOp(w, route, err)
		return
	}
	g.count(route, http.StatusOK)
	writeJSON(w, http.StatusOK, GatewayLastTSResponse{TS: ts})
}

// failOp maps an operation error onto an HTTP status.
func (g *Gateway) failOp(w http.ResponseWriter, route string, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadOption):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrTimeout):
		code = http.StatusGatewayTimeout
	}
	g.fail(w, route, code, err.Error())
}

func (g *Gateway) fail(w http.ResponseWriter, route string, code int, msg string) {
	g.count(route, code)
	writeJSON(w, code, httpError{Error: msg})
}

func (g *Gateway) count(route string, code int) {
	g.httpReqs.With(route, strconv.Itoa(code)).Inc()
}

// decodeKey unescapes a key path segment.
func decodeKey(raw string) (Key, bool) {
	if raw == "" {
		return "", false
	}
	s, err := url.PathUnescape(raw)
	if err != nil || s == "" {
		return "", false
	}
	return Key(s), true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
