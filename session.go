package dcdht

import (
	"context"
	"sync"
)

// Session provides session guarantees over any Client: read-your-writes
// and monotonic reads, tracked as a per-key timestamp floor — the
// highest timestamp the session has written or observed for each key.
// Guarantees are enforced cheaply: a session read is satisfied by the
// first probed replica at or past the floor (verdict
// CurrencySessionFloor), skipping the KTS last_ts round trip entirely;
// only a key the session has never touched pays the full
// provably-current path.
//
// An explicit WithConsistency (in the session defaults or per call)
// overrides the fast path while the floor keeps bounding below: even
// WithConsistency(Eventual) never successfully returns a replica older
// than the session floor (the read falls back to the
// most-recent-available error instead, like any failed currency check).
//
// A Session is safe for concurrent use. It holds no connection state —
// it is bookkeeping over the underlying Client, which may be shared.
//
// Sessions guarantee floors only for UMS reads: once the session holds
// a floor for a key, a read of it with WithAlgorithm(AlgBRK) — which
// has no floor enforcement — fails with ErrBadOption.
type Session struct {
	c        Client
	defaults []OpOption

	mu    sync.Mutex
	floor map[Key]Timestamp
}

// NewSession opens a session over c. The defaults are prepended to
// every operation's options — pin an issuer, select an algorithm, or
// fix a consistency level for the whole session:
//
//	s := dcdht.NewSession(net, dcdht.WithIssuer(3))
//	s.Put(ctx, "doc", v1)     // raises the session floor for "doc"
//	s.Get(ctx, "doc")         // sees v1 or newer, usually in one probe
//
// Both deployment styles also expose it as client.NewSession().
func NewSession(c Client, defaults ...OpOption) *Session {
	return &Session{c: c, defaults: defaults, floor: make(map[Key]Timestamp)}
}

// Client returns the underlying client the session operates over.
func (s *Session) Client() Client { return s.c }

// Floor reports the session's timestamp floor for key — the highest
// timestamp it has written or observed — and whether the session has
// touched the key at all.
func (s *Session) Floor(key Key) (Timestamp, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.floor[key]
	return ts, ok
}

// observe raises the floor for key to ts (floors never move backwards,
// which is exactly the monotonic-reads guarantee).
func (s *Session) observe(key Key, ts Timestamp) {
	if ts.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.floor[key]; !ok || cur.Less(ts) {
		s.floor[key] = ts
	}
}

// merge builds one option list: session defaults, then per-call
// options, then the session's internal floor option (so callers cannot
// accidentally override the floor).
func (s *Session) merge(opts []OpOption, extra ...OpOption) []OpOption {
	out := make([]OpOption, 0, len(s.defaults)+len(opts)+len(extra))
	out = append(out, s.defaults...)
	out = append(out, opts...)
	return append(out, extra...)
}

// Put stores data under key through the session: on success the
// session floor for key rises to the write's timestamp, so every later
// session read of key is guaranteed at least this fresh
// (read-your-writes).
func (s *Session) Put(ctx context.Context, key Key, data []byte, opts ...OpOption) (Result, error) {
	r, err := s.c.Put(ctx, key, data, s.merge(opts)...)
	if err == nil {
		s.observe(key, r.TS)
	}
	return r, err
}

// Get reads key through the session: a successful result is never
// older than the session floor, and the floor then rises to the
// returned timestamp (monotonic reads). With no explicit consistency
// level the read is satisfied directly from the floor — typically one
// replica probe and zero KTS messages.
func (s *Session) Get(ctx context.Context, key Key, opts ...OpOption) (Result, error) {
	f, _ := s.Floor(key)
	r, err := s.c.Get(ctx, key, s.merge(opts, withFloor(f))...)
	if err == nil {
		s.observe(key, r.TS)
	}
	return r, err
}

// LastTS asks for the last timestamp generated for key, through the
// session's defaults. The answer raises the session floor: a later
// session read is at least as fresh as what LastTS reported.
func (s *Session) LastTS(ctx context.Context, key Key, opts ...OpOption) (Timestamp, error) {
	ts, err := s.c.LastTS(ctx, key, s.merge(opts)...)
	if err == nil {
		s.observe(key, ts)
	}
	return ts, err
}

// NewSession implements Client: sessions over a simulated network.
func (s *SimNetwork) NewSession(defaults ...OpOption) *Session {
	return NewSession(s, defaults...)
}

// NewSession implements Client: sessions over a TCP node.
func (n *Node) NewSession(defaults ...OpOption) *Session {
	return NewSession(n, defaults...)
}
