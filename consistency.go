package dcdht

import (
	"fmt"
	"time"

	"repro/internal/dht"
)

// Consistency selects how current a read must be — the data-currency /
// retrieval-cost axis that is the paper's central tradeoff, exposed as
// a per-operation knob. Pass one to WithConsistency:
//
//	c.Get(ctx, key)                                        // Current: provably current (default)
//	c.Get(ctx, key, dcdht.WithConsistency(dcdht.Bounded(time.Minute)))
//	c.Get(ctx, key, dcdht.WithConsistency(dcdht.Eventual)) // first reachable replica
//
// Current pays a KTS last_ts round trip to prove the returned replica
// carries the last generated timestamp. Bounded(d) accepts a replica
// at or past a cached last_ts observed at most d ago, skipping the KTS
// round trip whenever the issuing peer's cache is fresh enough.
// Eventual returns the first reachable replica with no KTS contact at
// all. Result.Currency reports the claim the read actually earned.
// The zero value is Current.
type Consistency struct {
	level dht.Level
	bound time.Duration
}

// Current is the paper's provably-current retrieve: ask KTS for the
// key's last timestamp, probe replica positions until one carries it.
// The default for every read.
var Current = Consistency{level: dht.LevelCurrent}

// Eventual accepts the first reachable replica with no KTS round trip
// at all — the cheapest read, with no currency claim.
var Eventual = Consistency{level: dht.LevelEventual}

// Bounded accepts a replica that is at most d stale: when the issuing
// peer holds a cached last_ts observed no more than d ago, the read
// accepts the first replica at or past that floor with no KTS round
// trip; otherwise it falls back to the authoritative path (refreshing
// the cache for the next bounded read). A negative d is invalid and
// fails the operation with ErrBadOption.
func Bounded(d time.Duration) Consistency {
	return Consistency{level: dht.LevelBounded, bound: d}
}

// String renders "current", "bounded(1m0s)" or "eventual".
func (c Consistency) String() string {
	if c.level == dht.LevelBounded {
		return fmt.Sprintf("bounded(%v)", c.bound)
	}
	return c.level.String()
}

// Currency is the freshness verdict attached to every read Result: the
// claim the operation could actually prove about the returned replica,
// with Result.Floor / Result.FloorAge as evidence. It replaces the old
// lone `Current bool` — Result.Current() derives from it.
type Currency = dht.Currency

// The currency verdicts, from weakest to strongest claim.
const (
	// CurrencyUnknown makes no freshness claim (eventual reads, BRK,
	// and most-recent-available fallbacks).
	CurrencyUnknown = dht.CurrencyUnknown
	// CurrencySessionFloor: at least as fresh as the session's per-key
	// floor — read-your-writes and monotonic reads hold.
	CurrencySessionFloor = dht.CurrencySessionFloor
	// CurrencyWithinBound: at or past a cached last_ts younger than the
	// requested staleness bound.
	CurrencyWithinBound = dht.CurrencyWithinBound
	// CurrencyProven: carries the last timestamp KTS generated — the
	// paper's provable currency.
	CurrencyProven = dht.CurrencyProven
)
