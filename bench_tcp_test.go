package dcdht

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// BenchmarkClusterTCPRetrieve is the real-deployment spot check for
// Figure 6: it builds an actual TCP ring on loopback — the same protocol
// code the simulator runs, on real sockets and the real clock — and
// measures UMS retrieve latency and message cost. This is the
// reproduction's equivalent of the paper validating its simulator
// against the 64-node cluster implementation (§5.1).
func BenchmarkClusterTCPRetrieve(b *testing.B) {
	const peers = 16
	cfg := NodeConfig{
		Replicas:       10,
		Seed:           31,
		StabilizeEvery: 200 * time.Millisecond,
		GraceDelay:     20 * time.Millisecond,
	}
	nodes := make([]*Node, 0, peers)
	first, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	first.CreateRing()
	nodes = append(nodes, first)
	for i := 1; i < peers; i++ {
		nd, err := StartNode("127.0.0.1:0", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := nd.Join(first.Addr()); err != nil {
			b.Fatalf("join %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	time.Sleep(time.Second) // let stabilization settle

	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("tcp-bench-%d", i))
		if _, err := nodes[i%peers].Put(context.Background(), keys[i], []byte("cluster payload")); err != nil {
			b.Fatalf("insert: %v", err)
		}
	}

	var msgs, probes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := nodes[i%peers].Get(context.Background(), keys[i%len(keys)])
		if err != nil {
			b.Fatalf("retrieve: %v", err)
		}
		msgs += r.Msgs
		probes += r.Probed
	}
	b.StopTimer()
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
}
