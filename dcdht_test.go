package dcdht

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSimNetworkInsertRetrieve(t *testing.T) {
	ctx := context.Background()
	n := NewSimNetwork(48, SimConfig{Replicas: 5, Seed: 1})
	defer n.Close()
	if got := n.Peers(); got != 48 {
		t.Fatalf("peers = %d", got)
	}
	if _, err := n.Put(ctx, "greeting", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	r, err := n.Get(ctx, "greeting")
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "hello world" || !r.Current() {
		t.Fatalf("got %q current=%v", r.Data, r.Current())
	}
	if r.Elapsed <= 0 || r.Msgs <= 0 {
		t.Fatalf("metrics missing: %+v", r)
	}
}

func TestSimNetworkUpdateSupersedes(t *testing.T) {
	ctx := context.Background()
	n := NewSimNetwork(32, SimConfig{Replicas: 5, Seed: 2})
	defer n.Close()
	n.Put(ctx, "doc", []byte("v1"))
	n.Put(ctx, "doc", []byte("v2"))
	n.Put(ctx, "doc", []byte("v3"))
	r, err := n.Get(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "v3" {
		t.Fatalf("got %q", r.Data)
	}
	ts, err := n.LastTS(ctx, "doc")
	if err != nil || ts != r.TS {
		t.Fatalf("last_ts %v vs retrieved %v (err %v)", ts, r.TS, err)
	}
}

func TestSimNetworkSurvivesChurn(t *testing.T) {
	ctx := context.Background()
	n := NewSimNetwork(40, SimConfig{Replicas: 8, Seed: 3})
	defer n.Close()
	for i := 0; i < 6; i++ {
		n.Put(ctx, Key(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < 10; i++ {
		n.ChurnOne()
		n.Advance(30 * time.Second)
	}
	current := 0
	for i := 0; i < 6; i++ {
		r, err := n.Get(ctx, Key(fmt.Sprintf("k%d", i)))
		if err != nil && !errors.Is(err, ErrNoCurrentReplica) {
			t.Errorf("retrieve k%d: %v", i, err)
			continue
		}
		if string(r.Data) != fmt.Sprintf("v%d", i) {
			t.Errorf("k%d = %q", i, r.Data)
		}
		if r.Current() {
			current++
		}
	}
	if current == 0 {
		t.Fatal("no retrieve returned a provably current replica after churn")
	}
	if n.Peers() != 40 {
		t.Fatalf("population drifted to %d", n.Peers())
	}
}

func TestSimNetworkBRKBaseline(t *testing.T) {
	ctx := context.Background()
	n := NewSimNetwork(32, SimConfig{Replicas: 5, Seed: 4})
	defer n.Close()
	if _, err := n.Put(ctx, "b", []byte("v1"), WithAlgorithm(AlgBRK)); err != nil {
		t.Fatal(err)
	}
	r, err := n.Get(ctx, "b", WithAlgorithm(AlgBRK))
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "v1" {
		t.Fatalf("got %q", r.Data)
	}
	if r.Probed != 5 {
		t.Fatalf("BRK probed %d, want all 5", r.Probed)
	}
	// UMS on the same network probes fewer.
	n.Put(ctx, "u", []byte("v1"))
	ru, err := n.Get(ctx, "u")
	if err != nil {
		t.Fatal(err)
	}
	if ru.Probed >= r.Probed {
		t.Fatalf("UMS probed %d vs BRK %d", ru.Probed, r.Probed)
	}
}

func TestSimNetworkMissingKey(t *testing.T) {
	ctx := context.Background()
	n := NewSimNetwork(16, SimConfig{Replicas: 5, Seed: 5})
	defer n.Close()
	if _, err := n.Get(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalysisReexports(t *testing.T) {
	if e := ExpectedRetrievals(0.35, 10); e >= 3 {
		t.Fatalf("E(X) = %v", e)
	}
	if ps := IndirectSuccessProb(0.3, 13); ps <= 0.99 {
		t.Fatalf("ps = %v", ps)
	}
	if n := ReplicasForSuccess(0.3, 0.99); n != 13 {
		t.Fatalf("replicas = %d", n)
	}
}

// TestTCPRingEndToEnd is the cluster deployment in miniature: real
// sockets, real clocks, same protocol code.
func TestTCPRingEndToEnd(t *testing.T) {
	ctx := context.Background()
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	const peers = 8
	cfg := NodeConfig{
		Replicas:       5,
		Seed:           7,
		StabilizeEvery: 100 * time.Millisecond,
		GraceDelay:     50 * time.Millisecond,
	}
	nodes := make([]*Node, 0, peers)
	first, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.CreateRing()
	nodes = append(nodes, first)
	for i := 1; i < peers; i++ {
		nd, err := StartNode("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Join(first.Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	time.Sleep(time.Second) // a few stabilization rounds

	if _, err := nodes[2].Put(ctx, "tcp-key", []byte("over the wire")); err != nil {
		t.Fatalf("insert: %v", err)
	}
	r, err := nodes[6].Get(ctx, "tcp-key")
	if err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	if string(r.Data) != "over the wire" || !r.Current() {
		t.Fatalf("got %q current=%v", r.Data, r.Current())
	}

	// Update through another node; everyone must see the new value.
	if _, err := nodes[5].Put(ctx, "tcp-key", []byte("updated")); err != nil {
		t.Fatalf("update: %v", err)
	}
	for _, nd := range []*Node{nodes[0], nodes[3], nodes[7]} {
		r, err := nd.Get(ctx, "tcp-key")
		if err != nil {
			t.Fatalf("retrieve after update: %v", err)
		}
		if string(r.Data) != "updated" {
			t.Fatalf("stale read: %q", r.Data)
		}
	}

	// A graceful leave keeps data and counters available.
	if err := nodes[4].Leave(); err != nil {
		t.Logf("leave reported: %v (tolerated)", err)
	}
	time.Sleep(500 * time.Millisecond)
	r, err = nodes[1].Get(ctx, "tcp-key")
	if err != nil {
		t.Fatalf("retrieve after leave: %v", err)
	}
	if string(r.Data) != "updated" {
		t.Fatalf("after leave: %q", r.Data)
	}
	if _, err := nodes[1].Put(ctx, "tcp-key", []byte("v3")); err != nil {
		t.Fatalf("insert after leave: %v", err)
	}
	ts, err := nodes[2].LastTS(ctx, "tcp-key")
	if err != nil {
		t.Fatalf("last_ts: %v", err)
	}
	if ts.IsZero() {
		t.Fatal("last_ts lost after leave")
	}
}
