package dcdht

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/obs"
	"repro/internal/onehop"
)

// MetricsRegistry is a node's metrics registry: counters, gauges and
// histograms covering operations, KTS, routing, repair, storage and the
// TCP transport. Scrape it with WritePrometheus/Handler or capture it
// with Snapshot. See docs/OBSERVABILITY.md for the full metric families.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time capture of a registry: families
// sorted by name, series by label values, stable across identical runs.
// It marshals to JSON for programmatic consumers.
type MetricsSnapshot = obs.Snapshot

// Metrics returns the node's registry, for embedding its families into
// a larger exposition or capturing snapshots in tests.
func (n *Node) Metrics() *MetricsRegistry { return n.obs }

// RecoverySummary reports what a durable node reconstructed from its
// data directory at start, in /debug/status form.
type RecoverySummary struct {
	// Items is the number of hosted replicas recovered.
	Items int `json:"items"`
	// Counters is the number of KTS counters recovered.
	Counters int `json:"counters"`
	// Records is the number of log records replayed.
	Records int `json:"records"`
	// TornTail reports whether a torn final record (normal crash
	// residue) was found and discarded.
	TornTail bool `json:"torn_tail"`
}

// NodeStatus is the /debug/status document: the node's ring position
// and neighbours, what it currently holds, and — for durable nodes —
// what the last start recovered.
type NodeStatus struct {
	// Addr is the node's listen address.
	Addr string `json:"addr"`
	// ID is the node's ring position (its hashed address).
	ID string `json:"id"`
	// Ring is the overlay substrate ("chord", "can" or "onehop").
	Ring string `json:"ring"`
	// Predecessor is the ring predecessor's address (chord and onehop;
	// empty when unknown).
	Predecessor string `json:"predecessor,omitempty"`
	// Successor is the ring successor's address (chord only).
	Successor string `json:"successor,omitempty"`
	// Neighbors is the zone-neighbor count (CAN only).
	Neighbors int `json:"neighbors,omitempty"`
	// Zones is the number of coordinate zones owned (CAN only).
	Zones int `json:"zones,omitempty"`
	// TableSize is the full routing table's member count (onehop only).
	TableSize int `json:"table_size,omitempty"`
	// Replicas is the number of replicas this node currently hosts.
	Replicas int `json:"replicas"`
	// Counters is the number of valid KTS counters this node holds.
	Counters int `json:"counters"`
	// Durable reports whether the node runs on a write-ahead log.
	Durable bool `json:"durable"`
	// Recovery summarizes the last start's recovery (nil when volatile).
	Recovery *RecoverySummary `json:"recovery,omitempty"`
}

// Status captures the node's current state for /debug/status.
func (n *Node) Status() NodeStatus {
	st := NodeStatus{
		Addr:     string(n.ring.Self().Addr),
		ID:       n.ring.Self().ID.String(),
		Replicas: n.ring.Store().Len(),
		Counters: n.kts.VCSLen(),
		Durable:  n.wal != nil,
	}
	// The neighborhood view is substrate-specific: chord has a
	// predecessor and successor, CAN zone neighbors, onehop a
	// predecessor plus the full membership table.
	switch r := n.ring.(type) {
	case *chord.Node:
		st.Ring = string(RingChord)
		if pred := r.Predecessor(); !pred.IsZero() {
			st.Predecessor = string(pred.Addr)
		}
		if succ := r.Successor(); !succ.IsZero() {
			st.Successor = string(succ.Addr)
		}
	case *can.Node:
		st.Ring = string(RingCAN)
		st.Neighbors = len(r.Neighbors())
		st.Zones = len(r.Zones())
	case *onehop.Node:
		st.Ring = string(RingOneHop)
		if pred := r.Predecessor(); !pred.IsZero() {
			st.Predecessor = string(pred.Addr)
		}
		st.TableSize = r.TableSize()
	}
	if n.wal != nil {
		rec := n.wal.Recovered()
		st.Recovery = &RecoverySummary{
			Items:    rec.Items,
			Counters: rec.Counters,
			Records:  rec.Records,
			TornTail: rec.TornTail,
		}
	}
	return st
}

// MetricsServer is a running observability HTTP server: GET /metrics
// serves the Prometheus text exposition, GET /debug/status the
// NodeStatus JSON, and GET /debug/pprof/* the standard Go profiling
// endpoints (CPU, heap, goroutine, block, mutex — see
// docs/OBSERVABILITY.md for usage).
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the server's listen address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// ServeMetrics starts the node's observability HTTP server on listen
// ("127.0.0.1:0" picks a free port; see Addr). The caller owns the
// returned server and must Close it; the node's own Leave/Close do not.
func (n *Node) ServeMetrics(listen string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("dcdht: metrics listen %s: %w", listen, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", n.obs.Handler())
	mux.HandleFunc("/debug/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(n.Status())
	})
	// The standard profiling endpoints, registered explicitly rather
	// than via the net/http/pprof import side effect so they bind to
	// this mux, not http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &MetricsServer{ln: ln, srv: srv}, nil
}
