package dcdht

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/gateway"
	"repro/internal/network"
	"repro/internal/obs"
)

// GatewayConfig parameterizes a Gateway front-end.
type GatewayConfig struct {
	// Poll is the re-check interval for coalesced waiters and batch
	// joins. Zero selects the default (1ms).
	Poll time.Duration
	// CooldownAfter benches a backend after this many consecutive
	// errors (0 selects the default, 3).
	CooldownAfter int
	// Cooldown is how long a benched backend sits out before the
	// balancer considers it healthy again (0 selects the default, 2s).
	Cooldown time.Duration
	// Seed seeds the gateway's derived random streams; 0 is a valid
	// fixed seed.
	Seed int64
	// Obs receives the gateway's dcdht_gw_* metric families. Nil
	// creates a private registry, readable via Metrics.
	Obs *MetricsRegistry
}

// GatewayStats are the gateway's cumulative raw counters — coalescing,
// cache and backend traffic — for tests and experiment figures.
type GatewayStats = gateway.Stats

// Gateway is the front-end tier over a pool of backend Clients: many
// application clients multiplex over few ring connections. It
// implements Client, so Sessions, workloads and the scenario engine run
// unchanged on top of it, and adds three behaviours the ring itself
// does not have:
//
//   - load balancing: each operation goes to a healthy, least-loaded
//     backend (round-robin rotation breaks ties; backends accumulating
//     consecutive errors are benched briefly);
//   - hot-key coalescing: concurrent Gets for the same key at the same
//     consistency class share one backend operation, with each caller's
//     session floor revalidated before it accepts the shared result;
//   - a gateway-local last-ts cache: Bounded and Eventual reads (and
//     LastTS asks at those levels) can be answered with zero KTS
//     messages, exactly mirroring the peer-side KTS cache semantics of
//     docs/CONSISTENCY.md one tier earlier.
//
// WithIssuer and WithAlgorithm(AlgBRK) fail with ErrBadOption: the
// gateway picks the issuing backend itself, and BRK has no timestamps
// for the coalescing floor checks or the cache to reason about.
//
// See docs/GATEWAY.md for the architecture and the HTTP front-end.
type Gateway struct {
	gw       *gateway.Gateway
	env      *network.RealEnv
	obs      *obs.Registry
	httpReqs *obs.CounterVec
}

// clientBackend adapts a Client to the internal gateway backend
// interface. Key, Timestamp and Result are aliases of the internal
// types, so the adaptation is only about replaying read policies
// through the option machinery.
type clientBackend struct{ c Client }

func (b clientBackend) Insert(ctx context.Context, k core.Key, data []byte) (dht.OpResult, error) {
	return b.c.Put(ctx, k, data)
}

func (b clientBackend) Retrieve(ctx context.Context, k core.Key, pol dht.ReadPolicy) (dht.OpResult, error) {
	return b.c.Get(ctx, k, withPolicy(pol))
}

func (b clientBackend) LastTS(ctx context.Context, k core.Key) (core.Timestamp, error) {
	return b.c.LastTS(ctx, k)
}

// NewGateway builds a front-end over the given backend clients
// (typically ephemeral Nodes joined to the ring, or a SimNetwork's
// facade repeated per connection). At least one backend is required.
func NewGateway(backends []Client, cfg GatewayConfig) (*Gateway, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("dcdht: gateway needs at least one backend")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	env := network.NewRealEnv(cfg.Seed)
	pool := make([]gateway.Backend, len(backends))
	for i, c := range backends {
		pool[i] = clientBackend{c: c}
	}
	gw, err := gateway.New(pool, gateway.Config{
		Env:           env,
		Obs:           reg,
		Poll:          cfg.Poll,
		CooldownAfter: cfg.CooldownAfter,
		Cooldown:      cfg.Cooldown,
	})
	if err != nil {
		env.Close()
		return nil, fmt.Errorf("dcdht: %w", err)
	}
	return &Gateway{
		gw:  gw,
		env: env,
		obs: reg,
		httpReqs: reg.CounterVec("dcdht_gw_http_requests_total",
			"HTTP front-end requests served, by route and status code.", "route", "code"),
	}, nil
}

// Close releases the gateway's environment. Backends are owned by the
// caller and are not closed.
func (g *Gateway) Close() error {
	g.env.Close()
	return nil
}

// Metrics returns the gateway's registry (the dcdht_gw_* families).
func (g *Gateway) Metrics() *MetricsRegistry { return g.obs }

// Stats returns the gateway's cumulative raw counters.
func (g *Gateway) Stats() GatewayStats { return g.gw.Stats() }

// resolve folds the options and rejects the ones a gateway cannot
// honor, mirroring how a Node rejects WithIssuer.
func (g *Gateway) resolve(opts []OpOption) (opConfig, error) {
	oc, err := resolveOpts(opts)
	if err != nil {
		return oc, err
	}
	if oc.issuerSet {
		return oc, fmt.Errorf("dcdht: WithIssuer through a gateway (the balancer picks the backend): %w", ErrBadOption)
	}
	if oc.alg == AlgBRK {
		return oc, fmt.Errorf("dcdht: BRK through a gateway (no timestamps to coalesce or cache): %w", ErrBadOption)
	}
	return oc, nil
}

// Put stores data under key through a balancer-picked backend; the
// granted timestamp primes the gateway's last-ts cache.
func (g *Gateway) Put(ctx context.Context, key Key, data []byte, opts ...OpOption) (Result, error) {
	if _, err := g.resolve(opts); err != nil {
		return Result{}, err
	}
	return g.gw.Insert(ctx, key, data)
}

// Get reads key at the requested consistency. Concurrent Gets for the
// same (key, consistency class) coalesce into one backend operation;
// Bounded reads are answered via the gateway cache when a fresh-enough
// last-ts entry exists, at zero KTS cost.
func (g *Gateway) Get(ctx context.Context, key Key, opts ...OpOption) (Result, error) {
	oc, err := g.resolve(opts)
	if err != nil {
		return Result{}, err
	}
	return g.gw.Retrieve(ctx, key, oc.readPolicy())
}

// LastTS returns the last timestamp generated for key. At
// WithConsistency(Bounded(d)) or WithConsistency(Eventual) the answer
// may come straight from the gateway cache with zero backend and KTS
// messages; the default (Current) always asks KTS through a backend.
func (g *Gateway) LastTS(ctx context.Context, key Key, opts ...OpOption) (Timestamp, error) {
	oc, err := g.resolve(opts)
	if err != nil {
		return Timestamp{}, err
	}
	return g.gw.LastTS(ctx, key, oc.readPolicy())
}

// NewSession opens a session over the gateway: per-key floors provide
// read-your-writes and monotonic reads across the extra tier (coalesced
// results are revalidated against the session floor before being
// served).
func (g *Gateway) NewSession(defaults ...OpOption) *Session {
	return NewSession(g, defaults...)
}

// PutMulti stores a batch, spreading the writes across the backend pool
// concurrently.
func (g *Gateway) PutMulti(ctx context.Context, items []KV, opts ...OpOption) ([]MultiResult, error) {
	if _, err := g.resolve(opts); err != nil {
		return nil, err
	}
	gitems := make([]gateway.Item, len(items))
	for i, it := range items {
		gitems[i] = gateway.Item{Key: it.Key, Data: it.Data}
	}
	out := g.gw.InsertMulti(ctx, gitems)
	res := make([]MultiResult, len(out))
	for i, r := range out {
		res[i] = MultiResult{Key: items[i].Key, Result: r.Res, Err: r.Err}
	}
	return res, nil
}

// GetMulti retrieves a batch concurrently; duplicate hot keys inside
// the batch coalesce like any other concurrent reads.
func (g *Gateway) GetMulti(ctx context.Context, keys []Key, opts ...OpOption) ([]MultiResult, error) {
	oc, err := g.resolve(opts)
	if err != nil {
		return nil, err
	}
	out := g.gw.RetrieveMulti(ctx, keys, oc.readPolicy())
	res := make([]MultiResult, len(out))
	for i, r := range out {
		res[i] = MultiResult{Key: keys[i], Result: r.Res, Err: r.Err}
	}
	return res, nil
}
